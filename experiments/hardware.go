package experiments

import (
	"fmt"

	"hyperhammer/internal/attack"
	"hyperhammer/internal/dram"
	"hyperhammer/internal/guest"
	"hyperhammer/internal/hammer"
	"hyperhammer/internal/kvm"
	"hyperhammer/internal/memdef"
	"hyperhammer/internal/report"
)

// This file evaluates the two deployed hardware mitigations the
// paper's Section 6 discusses — in-DRAM Target Row Refresh and ECC —
// and the iTLB-Multihit trade-off that motivates the NX-hugepage
// countermeasure HyperHammer exploits.

// TRRRow is one (DIMM, pattern) cell of the TRR evaluation.
type TRRRow struct {
	DIMM         string
	Pattern      string
	Flips        int
	Reproducible int
}

// TRRResult compares hammer patterns on TRR-free and TRR-protected
// DIMMs.
type TRRResult struct {
	Rows []TRRRow
}

// Table renders the comparison.
func (r *TRRResult) Table() *report.Table {
	t := report.NewTable("Section 6: in-DRAM TRR vs hammer patterns",
		"DIMM", "Pattern", "Flips", "Reproducible")
	for _, row := range r.Rows {
		t.AddRow(row.DIMM, row.Pattern, row.Flips, row.Reproducible)
	}
	return t
}

// TRR runs the paper's single-sided pattern and a TRRespass-style
// many-sided pattern against a vulnerable DIMM without TRR and the
// same DIMM with a 4-slot TRR tracker. The expected shape (matching
// TRRespass, which the paper cites for its pattern search): TRR stops
// the narrow pattern cold, while the many-sided pattern overwhelms the
// tracker and still flips bits.
func TRR(o Options) (*TRRResult, error) {
	return planOne(o, (*Plan).TRR)
}

// TRR registers each DIMM variant's pattern search as an independent
// unit and returns the future of the assembled comparison.
func (p *Plan) TRR() *Future[*TRRResult] {
	f := &Future[*TRRResult]{}
	res := &TRRResult{}
	for _, variant := range []struct {
		unit, name string
		trr        *dram.TRRConfig
	}{
		{"trr.off", "no TRR", nil},
		{"trr.4slot", "TRR (4 slots)", &dram.TRRConfig{Slots: 4, Seed: p.o.Seed ^ 0x7272}},
	} {
		variant := variant
		addTyped(p, variant.unit,
			func(o Options) ([]TRRRow, error) { return trrRun(o, variant.name, variant.trr) },
			func(rows []TRRRow) { res.Rows = append(res.Rows, rows...) })
	}
	p.finally(func() error { f.set(res); return nil })
	return f
}

// trrRun searches both hammer patterns against one DIMM variant.
func trrRun(o Options, variant string, trr *dram.TRRConfig) ([]TRRRow, error) {
	patterns := []hammer.Pattern{
		{Name: "single-sided-2", RowOffsets: []int{6, 7}, Rounds: 250_000},
		{Name: "many-sided-8", RowOffsets: []int{0, 1, 2, 3, 4, 5, 6, 7}, Rounds: 250_000},
	}
	fault := dram.FaultModelConfig{
		Seed: o.Seed ^ 0x55, CellsPerRow: 0.6,
		ThresholdMin: 50_000, ThresholdMax: 150_000,
		StableFraction: 0.9, FlakyP: 0.5,
		NeighborWeight1: 1.0, NeighborWeight2: 0.25,
		TRR: trr,
	}
	sc := shortScale()
	h, err := kvm.NewHost(kvm.Config{
		Geometry:       sc.geometry(SystemS1),
		Fault:          fault,
		THP:            true,
		NXHugepages:    true,
		BootNoisePages: 500,
		Seed:           o.Seed,
		Trace:          o.Trace,
		Metrics:        o.Metrics,
		Inspect:        o.Inspect,
		Forensics:      o.Forensics,
	})
	if err != nil {
		return nil, err
	}
	vm, err := h.CreateVM(kvm.VMConfig{MemSize: 512 * memdef.MiB, VFIOGroups: 1})
	if err != nil {
		return nil, err
	}
	gos := guest.Boot(vm)
	results, err := hammer.Search(gos, hammer.Config{
		BankMasks: sc.geometry(SystemS1).BankMasks,
		RowShift:  18,
		Hugepages: 96,
		Repeats:   2,
	}, patterns)
	if err != nil {
		return nil, fmt.Errorf("trr search (%s): %w", variant, err)
	}
	var rows []TRRRow
	for _, r := range results {
		rows = append(rows, TRRRow{
			DIMM:         variant,
			Pattern:      r.Pattern.Name,
			Flips:        r.Flips,
			Reproducible: r.Reproducible,
		})
	}
	return rows, nil
}

// ECCResult compares profiling yield on non-ECC and ECC hosts.
type ECCResult struct {
	// FlipsNonECC is the profiling yield on the paper's non-ECC
	// configuration.
	FlipsNonECC int
	// FlipsECC is the yield on an ECC host (single-bit errors are
	// scrubbed away before software sees them).
	FlipsECC int
	// Corrected is the ECC host's corrected-error count — the
	// operator-visible trace the attack leaves behind.
	Corrected int
	// Detected is the count of uncorrectable double-bit words (host
	// machine checks).
	Detected int
	// HostCrashed reports whether the ECC host machine-checked
	// during profiling.
	HostCrashed bool
}

// Table renders the comparison.
func (r *ECCResult) Table() *report.Table {
	t := report.NewTable("Section 6: ECC memory vs Rowhammer profiling",
		"Metric", "Value")
	t.AddRow("flips observed, non-ECC DIMMs", r.FlipsNonECC)
	t.AddRow("flips observed, ECC DIMMs", r.FlipsECC)
	t.AddRow("ECC corrected errors (EDAC counter)", r.Corrected)
	t.AddRow("ECC uncorrectable words", r.Detected)
	t.AddRow("ECC host machine-checked", r.HostCrashed)
	return t
}

// ECC runs the same profiling budget on a non-ECC host and an ECC
// host. The paper's Section 6 notes its machines use non-ECC DIMMs
// "which differs from typical commodity servers": on the ECC host the
// attacker observes nothing (while the operator's corrected-error
// counters climb), unless a double-bit word machine-checks the host —
// either way HyperHammer's profiling starves.
func ECC(o Options) (*ECCResult, error) {
	return planOne(o, (*Plan).ECC)
}

// eccOutcome is what one host (ECC or not) reports.
type eccOutcome struct {
	flips, corrected, detected int
	crashed                    bool
}

// ECC registers the non-ECC and ECC hosts as independent units and
// returns the future of the comparison.
func (p *Plan) ECC() *Future[*ECCResult] {
	f := &Future[*ECCResult]{}
	res := &ECCResult{}
	for _, ecc := range []bool{false, true} {
		ecc := ecc
		name := "ecc.off"
		if ecc {
			name = "ecc.on"
		}
		addTyped(p, name,
			func(o Options) (eccOutcome, error) { return eccRun(o, ecc) },
			func(out eccOutcome) {
				if ecc {
					res.FlipsECC = out.flips
					res.Corrected, res.Detected = out.corrected, out.detected
					res.HostCrashed = out.crashed
				} else {
					res.FlipsNonECC = out.flips
				}
			})
	}
	p.finally(func() error { f.set(res); return nil })
	return f
}

// eccRun runs the profiling budget on one host.
func eccRun(o Options, ecc bool) (eccOutcome, error) {
	sc := shortScale()
	fault := sc.fault(SystemS1, o.Seed)
	fault.CellsPerRow = 0.1 // dense enough to see the contrast quickly
	h, err := kvm.NewHost(kvm.Config{
		Geometry:       sc.geometry(SystemS1),
		Fault:          fault,
		THP:            true,
		NXHugepages:    true,
		BootNoisePages: 500,
		ECC:            ecc,
		Seed:           o.Seed,
		Trace:          o.Trace,
		Metrics:        o.Metrics,
		Inspect:        o.Inspect,
		Forensics:      o.Forensics,
	})
	if err != nil {
		return eccOutcome{}, err
	}
	vm, err := h.CreateVM(kvm.VMConfig{MemSize: 1 * memdef.GiB, VFIOGroups: 1})
	if err != nil {
		return eccOutcome{}, err
	}
	gos := guest.Boot(vm)
	cfg := attackConfig(sc, SystemS1)
	prof, err := attack.Profile(gos, cfg)
	if err != nil && !ecc {
		return eccOutcome{}, err
	}
	out := eccOutcome{}
	if prof != nil {
		out.flips = prof.Total
	}
	if ecc {
		out.corrected, out.detected = h.ECCStats()
		out.crashed = h.Crashed()
	}
	return out, nil
}

// MultihitResult captures the trade-off between the iTLB Multihit DoS
// and HyperHammer: the NX-hugepage countermeasure blocks the former
// and enables the latter.
type MultihitResult struct {
	// DoSWithMitigation / DoSWithoutMitigation report whether the
	// malicious guest crashed the host.
	DoSWithMitigation, DoSWithoutMitigation bool
	// SplitsWithMitigation / SplitsWithoutMitigation count the
	// hugepage splits (HyperHammer's EPT-page source) the same exec
	// workload produced.
	SplitsWithMitigation, SplitsWithoutMitigation int
}

// Table renders the trade-off.
func (r *MultihitResult) Table() *report.Table {
	t := report.NewTable("Section 4.2.3: the iTLB Multihit trade-off (affected CPU)",
		"NX-hugepage countermeasure", "guest DoS crashes host", "hugepage splits (EPTE source)")
	t.AddRow("on (KVM default)", r.DoSWithMitigation, r.SplitsWithMitigation)
	t.AddRow("off", r.DoSWithoutMitigation, r.SplitsWithoutMitigation)
	return t
}

// Multihit demonstrates why KVM ships the countermeasure HyperHammer
// exploits: on an affected CPU without it, a malicious guest
// machine-checks the host at will (denial of service); with it, the
// host survives — but every guest code fetch now mints the EPT pages
// Page Steering feeds on.
func Multihit(o Options) (*MultihitResult, error) {
	return planOne(o, (*Plan).Multihit)
}

// multihitOutcome is one host's DoS-vs-splits measurement.
type multihitOutcome struct {
	crashed bool
	splits  int
}

// Multihit registers the mitigated and unmitigated hosts as
// independent units and returns the future of the trade-off.
func (p *Plan) Multihit() *Future[*MultihitResult] {
	f := &Future[*MultihitResult]{}
	res := &MultihitResult{}
	for _, mitigated := range []bool{true, false} {
		mitigated := mitigated
		name := "multihit.unmitigated"
		if mitigated {
			name = "multihit.mitigated"
		}
		addTyped(p, name,
			func(o Options) (multihitOutcome, error) { return multihitRun(o, mitigated) },
			func(out multihitOutcome) {
				if mitigated {
					res.DoSWithMitigation = out.crashed
					res.SplitsWithMitigation = out.splits
				} else {
					res.DoSWithoutMitigation = out.crashed
					res.SplitsWithoutMitigation = out.splits
				}
			})
	}
	p.finally(func() error { f.set(res); return nil })
	return f
}

// multihitRun measures one host: exec in every hugepage, then attempt
// the Multihit DoS.
func multihitRun(o Options, mitigated bool) (multihitOutcome, error) {
	sc := shortScale()
	h, err := kvm.NewHost(kvm.Config{
		Geometry:           sc.geometry(SystemS1),
		Fault:              sc.fault(SystemS1, o.Seed),
		THP:                true,
		NXHugepages:        mitigated,
		MultihitBugPresent: true,
		BootNoisePages:     500,
		Seed:               o.Seed,
		Trace:              o.Trace,
		Metrics:            o.Metrics,
		Inspect:            o.Inspect,
		Forensics:          o.Forensics,
	})
	if err != nil {
		return multihitOutcome{}, err
	}
	vm, err := h.CreateVM(kvm.VMConfig{MemSize: 256 * memdef.MiB, VFIOGroups: 1})
	if err != nil {
		return multihitOutcome{}, err
	}
	gos := guest.Boot(vm)
	base, err := gos.AllocHuge(64)
	if err != nil {
		return multihitOutcome{}, err
	}
	// The same guest workload on both hosts: execute code in every
	// hugepage, then attempt the Multihit DoS.
	for i := 0; i < 64; i++ {
		if _, err := gos.Exec(base + memdef.GVA(i)*memdef.HugePageSize); err != nil {
			return multihitOutcome{}, err
		}
	}
	crashed, err := gos.TriggerMultihitDoS(base)
	if err != nil {
		return multihitOutcome{}, err
	}
	return multihitOutcome{crashed: crashed, splits: vm.Splits()}, nil
}
