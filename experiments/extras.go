package experiments

import (
	"fmt"

	"hyperhammer/internal/dram"
	"hyperhammer/internal/dramdig"
	"hyperhammer/internal/guest"
	"hyperhammer/internal/kvm"
	"hyperhammer/internal/memdef"
	"hyperhammer/internal/mitigation"
	"hyperhammer/internal/report"
	"hyperhammer/internal/virtio"
	"hyperhammer/internal/xenlite"
)

// DRAMDigRow is one system's bank-function recovery outcome.
type DRAMDigRow struct {
	System System
	// Banks is the recovered bank count.
	Banks int
	// MaskCount is the number of recovered XOR masks.
	MaskCount int
	// Probes is the timing-probe budget spent.
	Probes int
	// Matches reports whether the recovered function induces the
	// same collision classes as the ground-truth geometry.
	Matches bool
	// THPCompatible reports whether all recovered bits are <= 21.
	THPCompatible bool
}

// DRAMDigResult reproduces the Section 5.1 DRAMDig verification.
type DRAMDigResult struct {
	Rows []DRAMDigRow
}

// Table renders the result.
func (r *DRAMDigResult) Table() *report.Table {
	t := report.NewTable("Section 5.1: DRAMDig bank-function recovery",
		"System", "Banks", "Masks", "Probes", "Matches", "THP-compatible")
	for _, row := range r.Rows {
		t.AddRow(row.System, row.Banks, row.MaskCount, row.Probes, row.Matches, row.THPCompatible)
	}
	return t
}

// DRAMDig recovers the bank function of both processors from timing
// and verifies the paper's two claims: the recovery matches the real
// function, and every function bit is preserved by THP translation.
func DRAMDig(o Options) (*DRAMDigResult, error) {
	return planOne(o, (*Plan).DRAMDig)
}

// DRAMDig registers one per-geometry recovery unit per system and
// returns the future of the assembled table.
func (p *Plan) DRAMDig() *Future[*DRAMDigResult] {
	f := &Future[*DRAMDigResult]{}
	res := &DRAMDigResult{}
	for _, sys := range []System{SystemS1, SystemS2} {
		sys := sys
		addTyped(p, "dramdig."+sys.String(),
			func(o Options) (DRAMDigRow, error) { return dramdigRun(o, sys) },
			func(row DRAMDigRow) { res.Rows = append(res.Rows, row) })
	}
	p.finally(func() error { f.set(res); return nil })
	return f
}

// dramdigRun recovers and verifies one system's bank function.
func dramdigRun(o Options, sys System) (DRAMDigRow, error) {
	geo := dram.CoreI310100()
	if sys == SystemS2 {
		geo = dram.XeonE32124()
	}
	timing := dram.NewTiming(geo, o.Seed^0xD1)
	cfg := dramdig.DefaultConfig(geo.Size)
	cfg.Seed = o.Seed ^ 0xD2
	cfg.Trace = o.Trace
	rec, err := dramdig.Recover(timing, cfg)
	if err != nil {
		return DRAMDigRow{}, fmt.Errorf("dramdig %s: %w", sys, err)
	}
	matches := true
	base := memdef.HPA(5 * memdef.GiB)
	for off := uint64(0); off < 512*memdef.KiB && matches; off += 64 * 3 {
		a, b := base, base+memdef.HPA(off)
		matches = rec.SameBank(a, b) == (geo.Bank(a) == geo.Bank(b))
	}
	return DRAMDigRow{
		System:        sys,
		Banks:         rec.Banks,
		MaskCount:     len(rec.Masks),
		Probes:        rec.ProbeCount,
		Matches:       matches,
		THPCompatible: rec.AllBitsBelow(22),
	}, nil
}

// MitigationResult evaluates the Section 6 quarantine countermeasure.
type MitigationResult struct {
	// StockReleased is how many blocks a malicious guest released on
	// a stock host.
	StockReleased int
	// QuarantinedReleased is the same on a quarantined host.
	QuarantinedReleased int
	// NACKs is how many malicious requests the quarantine refused.
	NACKs int
	// LegitResizeOK reports whether an honest hypervisor-initiated
	// resize still works under quarantine.
	LegitResizeOK bool
}

// Table renders the result.
func (r *MitigationResult) Table() *report.Table {
	t := report.NewTable("Section 6: quarantine countermeasure",
		"Metric", "Value")
	t.AddRow("voluntary releases on stock QEMU", r.StockReleased)
	t.AddRow("voluntary releases under quarantine", r.QuarantinedReleased)
	t.AddRow("quarantine NACKs", r.NACKs)
	t.AddRow("legitimate resize still works", r.LegitResizeOK)
	return t
}

// Mitigation runs Page Steering's release step against a stock host
// and a quarantined host and compares.
func Mitigation(o Options) (*MitigationResult, error) {
	return planOne(o, (*Plan).Mitigation)
}

// mitigationOutcome is what one host (stock or quarantined) reports.
type mitigationOutcome struct {
	released, nacks int
	legit           bool
}

// Mitigation registers the stock host and the quarantined host as
// independent units and returns the future of the comparison.
func (p *Plan) Mitigation() *Future[*MitigationResult] {
	f := &Future[*MitigationResult]{}
	res := &MitigationResult{}
	for _, guarded := range []bool{false, true} {
		guarded := guarded
		name := "mitigation.stock"
		if guarded {
			name = "mitigation.quarantined"
		}
		addTyped(p, name,
			func(o Options) (mitigationOutcome, error) { return mitigationRun(o, guarded) },
			func(out mitigationOutcome) {
				if guarded {
					res.QuarantinedReleased = out.released
					res.NACKs = out.nacks
					res.LegitResizeOK = out.legit
				} else {
					res.StockReleased = out.released
				}
			})
	}
	p.finally(func() error { f.set(res); return nil })
	return f
}

// mitigationRun boots one host (quarantined when guarded), attempts
// the malicious releases, then an honest resize.
func mitigationRun(o Options, guarded bool) (mitigationOutcome, error) {
	sc := o.scale()
	var guard virtio.Guard
	if guarded {
		// Built from the unit's own trace so quarantine events land in
		// the owning unit's span stream.
		guard, _ = mitigation.Traced(o.Trace)
	}
	cfg := kvm.Config{
		Geometry:       sc.geometry(SystemS1),
		Fault:          sc.fault(SystemS1, o.Seed),
		THP:            true,
		NXHugepages:    true,
		BootNoisePages: 1000,
		Seed:           o.Seed,
		Quarantine:     guard,
		Trace:          o.Trace,
		Metrics:        o.Metrics,
		Inspect:        o.Inspect,
		Forensics:      o.Forensics,
	}
	h, err := kvm.NewHost(cfg)
	if err != nil {
		return mitigationOutcome{}, err
	}
	vm, err := h.CreateVM(kvm.VMConfig{MemSize: sc.vmSize / 2, VFIOGroups: 1})
	if err != nil {
		return mitigationOutcome{}, err
	}
	gos := guest.Boot(vm)
	gos.InstallAttackDriver()
	base, err := gos.AllocHuge(16)
	if err != nil {
		return mitigationOutcome{}, err
	}
	out := mitigationOutcome{}
	for i := 0; i < 8; i++ {
		gva := base + memdef.GVA(i)*memdef.HugePageSize
		if gos.ReleaseHugepage(gva) == nil {
			out.released++
		}
	}
	out.nacks = vm.MemDevice().NACKs()
	// An honest shrink: hypervisor lowers the target, stock
	// driver follows.
	dev := vm.MemDevice()
	dev.SetRequestedSize(dev.PluggedSize() - 2*memdef.HugePageSize)
	honest := virtio.NewGuestDriver(dev)
	honest.OnUnplug = func(gpa memdef.GPA, _ uint64) {}
	_, serr := honest.SyncToTarget()
	out.legit = serr == nil && dev.PluggedSize() == dev.RequestedSize()
	return out, nil
}

// XenResult compares Page Steering difficulty on Xen versus KVM
// (Section 6).
type XenResult struct {
	// XenReleased/XenReused are the Xen-lite steering counts with no
	// exhaustion step at all.
	XenReleased, XenReused int
	// KVMNoExhaustReleased/Reused are KVM counts when the attacker
	// skips the exhaustion step.
	KVMNoExhaustReleased, KVMNoExhaustReused int
}

// XenRE returns the Xen reuse fraction R/N.
func (r *XenResult) XenRE() float64 {
	if r.XenReleased == 0 {
		return 0
	}
	return float64(r.XenReused) / float64(r.XenReleased)
}

// KVMRE returns KVM's no-exhaustion reuse fraction.
func (r *XenResult) KVMRE() float64 {
	if r.KVMNoExhaustReleased == 0 {
		return 0
	}
	return float64(r.KVMNoExhaustReused) / float64(r.KVMNoExhaustReleased)
}

// Table renders the comparison.
func (r *XenResult) Table() *report.Table {
	t := report.NewTable("Section 6: Page Steering without exhaustion, Xen vs KVM",
		"Hypervisor", "Released pages", "Reused by tables", "R/N")
	t.AddRow("Xen (single heap)", r.XenReleased, r.XenReused, report.Percent(r.XenRE()))
	t.AddRow("KVM (migratetypes)", r.KVMNoExhaustReleased, r.KVMNoExhaustReused, report.Percent(r.KVMRE()))
	return t
}

// Xen runs the comparison: on Xen-lite, released domain pages are
// immediately eligible for p2m allocations; on KVM, skipping the
// exhaustion step leaves the noise pages in front of the released
// blocks and reuse collapses.
func Xen(o Options) (*XenResult, error) {
	return planOne(o, (*Plan).Xen)
}

// Xen registers the Xen-lite heap side and the KVM no-exhaust side as
// independent units and returns the future of the comparison.
func (p *Plan) Xen() *Future[*XenResult] {
	f := &Future[*XenResult]{}
	res := &XenResult{}
	addTyped(p, "xen.heap",
		func(Options) ([2]int, error) { return xenHeapRun() },
		func(v [2]int) { res.XenReleased, res.XenReused = v[0], v[1] })
	addTyped(p, "xen.kvm",
		func(o Options) ([2]int, error) { return xenKVMRun(o) },
		func(v [2]int) { res.KVMNoExhaustReleased, res.KVMNoExhaustReused = v[0], v[1] })
	p.finally(func() error { f.set(res); return nil })
	return f
}

// xenHeapRun measures steering reuse on the Xen-lite single heap:
// 4 GiB heap, 3 GiB domain, release 8 chunks, allocate p2m pages.
func xenHeapRun() ([2]int, error) {
	heap := xenlite.NewHeap(0, 4*memdef.GiB/memdef.PageSize)
	dom, err := heap.CreateDomain(3 * memdef.GiB)
	if err != nil {
		return [2]int{}, err
	}
	var chunks []memdef.GPA
	for i := 0; i < 8; i++ {
		chunks = append(chunks, memdef.GPA(i)*37*memdef.HugePageSize)
	}
	released, reused, err := dom.SteeringReuse(chunks, 8*memdef.PagesPerHuge)
	if err != nil {
		return [2]int{}, err
	}
	return [2]int{released, reused}, nil
}

// xenKVMRun measures the same shape on KVM, but skips exhaustion.
func xenKVMRun(o Options) ([2]int, error) {
	sc := shortScale()
	h, err := o.newHostAt(sc, SystemS1)
	if err != nil {
		return [2]int{}, err
	}
	vm, err := h.CreateVM(kvm.VMConfig{MemSize: sc.vmSize, VFIOGroups: 1})
	if err != nil {
		return [2]int{}, err
	}
	gos := guest.Boot(vm)
	gos.InstallAttackDriver()
	n := gos.FreeHugepages()
	base, err := gos.AllocHuge(n)
	if err != nil {
		return [2]int{}, err
	}
	for i := 1; i <= 8; i++ {
		if err := gos.ReleaseHugepage(base + memdef.GVA(i*37)*memdef.HugePageSize); err != nil {
			return [2]int{}, err
		}
	}
	for i := 0; i < n; i++ {
		gva := base + memdef.GVA(i)*memdef.HugePageSize
		if _, err := gos.GPAOf(gva); err != nil {
			continue // released
		}
		if _, err := gos.Exec(gva); err != nil {
			return [2]int{}, err
		}
	}
	stats := vm.EPTReuse()
	return [2]int{stats.ReleasedPages, stats.ReusedPages}, nil
}

// newHostAt boots a host at an explicit scale (used by comparisons
// that always run small).
func (o Options) newHostAt(sc scale, sys System) (*kvm.Host, error) {
	return kvm.NewHost(kvm.Config{
		Geometry:       sc.geometry(sys),
		Fault:          sc.fault(sys, o.Seed),
		THP:            true,
		NXHugepages:    true,
		BootNoisePages: sc.hostNoise(sys),
		Seed:           o.Seed ^ uint64(sys)<<32,
		Trace:          o.Trace,
		Metrics:        o.Metrics,
		Inspect:        o.Inspect,
		Forensics:      o.Forensics,
	})
}
