package experiments

import (
	"strings"
	"testing"
)

func shortOpts() Options {
	return Options{Seed: 61, Short: true, MaxAttempts: 40}
}

func TestTable1Short(t *testing.T) {
	res, err := Table1(shortOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	s1, s2 := res.Rows[0], res.Rows[1]
	if s1.System != SystemS1 || s2.System != SystemS2 {
		t.Fatal("row order wrong")
	}
	// The Table 1 shape: S2 finds more flips, S1 keeps a much higher
	// stable fraction.
	if s1.Total == 0 || s2.Total == 0 {
		t.Fatalf("no flips: %+v %+v", s1, s2)
	}
	if s2.Total <= s1.Total {
		t.Errorf("S2 total %d <= S1 total %d", s2.Total, s1.Total)
	}
	if s1.Total > 0 && s2.Total > 0 {
		f1 := float64(s1.Stable) / float64(s1.Total)
		f2 := float64(s2.Stable) / float64(s2.Total)
		if f1 <= f2 {
			t.Errorf("stable fractions: S1 %.2f <= S2 %.2f", f1, f2)
		}
	}
	for _, row := range res.Rows {
		if row.OneToZero+row.ZeroToOne != row.Total {
			t.Errorf("%s: direction sum mismatch", row.System)
		}
		if row.Exploitable > row.Total {
			t.Errorf("%s: exploitable > total", row.System)
		}
		if row.Time <= 0 {
			t.Errorf("%s: no profiling time", row.System)
		}
	}
	if out := res.Table().String(); !strings.Contains(out, "Table 1") {
		t.Error("table rendering broken")
	}
}

func TestFigure3Short(t *testing.T) {
	res, err := Figure3(shortOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("series = %d", len(res.Series))
	}
	// Every system's noise must eventually drop below 1,024; S3 must
	// start with more noise and take longer than S1.
	for _, s := range res.Series {
		if len(s.Points) < 3 {
			t.Fatalf("%s: only %d points", s.System, len(s.Points))
		}
		if drop := res.DropBelow(s.System, res.Threshold1024); drop < 0 {
			t.Errorf("%s never dropped below 1024 (final %d)",
				s.System, s.Points[len(s.Points)-1].NoisePages)
		}
	}
	s1Start := res.Series[0].Points[0].NoisePages
	s3Start := res.Series[2].Points[0].NoisePages
	if s3Start <= s1Start {
		t.Errorf("S3 start %d <= S1 start %d", s3Start, s1Start)
	}
	if res.DropBelow(SystemS3, 1024) <= res.DropBelow(SystemS1, 1024) {
		t.Errorf("S3 dropped no later than S1 (%.0fs vs %.0fs)",
			res.DropBelow(SystemS3, 1024), res.DropBelow(SystemS1, 1024))
	}
}

func TestTable2Short(t *testing.T) {
	res, err := Table2(shortOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 15 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Per-system: R_E grows with spray size at fixed B, and the reuse
	// ratios stay in range.
	for i := 0; i < len(res.Rows); i += 5 {
		small, large := res.Rows[i], res.Rows[i+1]
		if small.SprayBytes >= large.SprayBytes {
			t.Fatal("settings order wrong")
		}
		if large.RE() <= small.RE() {
			t.Errorf("%s: R_E did not grow with spray (%.2f -> %.2f)",
				small.System, small.RE(), large.RE())
		}
	}
	for _, row := range res.Rows {
		if row.Reused > row.Released || row.Reused > row.EPTPages {
			t.Errorf("impossible reuse: %+v", row)
		}
		if row.EPTPages == 0 {
			t.Errorf("%s: no EPT pages created", row.System)
		}
	}
}

func TestTable3Short(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign experiment")
	}
	res, err := Table3(shortOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.AvgAttempt <= 0 {
			t.Errorf("%s: no attempt timing", row.System)
		}
		if row.Attempts == 0 || row.ProfiledBits == 0 {
			t.Errorf("%s: campaign did not run: %+v", row.System, row)
		}
	}
}

func TestAnalysis(t *testing.T) {
	res := Analysis(DefaultOptions(), nil)
	if res.Bound < 1.0/700 || res.Bound > 1.0/500 {
		t.Errorf("bound = %v", res.Bound)
	}
	if len(res.EndToEnd) != 2 {
		t.Fatalf("end-to-end rows = %d", len(res.EndToEnd))
	}
	// Paper: 192 days on S1, 137 on S2.
	d1 := res.EndToEnd[0].ExpectedTotal.Hours() / 24
	d2 := res.EndToEnd[1].ExpectedTotal.Hours() / 24
	if d1 < 180 || d1 > 205 {
		t.Errorf("S1 end-to-end = %.0f days, want ~192", d1)
	}
	if d2 < 128 || d2 > 146 {
		t.Errorf("S2 end-to-end = %.0f days, want ~137", d2)
	}
	if res.MonteCarlo > res.Bound*1.2 {
		t.Errorf("Monte Carlo %v above bound %v", res.MonteCarlo, res.Bound)
	}
}

func TestDRAMDigExperiment(t *testing.T) {
	res, err := DRAMDig(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Banks != 32 {
			t.Errorf("%s: %d banks", row.System, row.Banks)
		}
		if !row.Matches || !row.THPCompatible {
			t.Errorf("%s: matches=%v thp=%v", row.System, row.Matches, row.THPCompatible)
		}
	}
}

func TestMitigationExperiment(t *testing.T) {
	res, err := Mitigation(shortOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.StockReleased != 8 {
		t.Errorf("stock released = %d, want 8", res.StockReleased)
	}
	if res.QuarantinedReleased != 0 {
		t.Errorf("quarantine leaked %d releases", res.QuarantinedReleased)
	}
	if res.NACKs != 8 {
		t.Errorf("NACKs = %d", res.NACKs)
	}
	if !res.LegitResizeOK {
		t.Error("quarantine broke legitimate resizes")
	}
}

func TestXenComparison(t *testing.T) {
	res, err := Xen(shortOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.XenRE() < 0.9 {
		t.Errorf("Xen reuse = %.2f, want near-total", res.XenRE())
	}
	if res.KVMRE() >= res.XenRE()/2 {
		t.Errorf("KVM-without-exhaustion reuse %.2f not clearly below Xen %.2f",
			res.KVMRE(), res.XenRE())
	}
}

func TestBalloonFeasibility(t *testing.T) {
	res, err := Balloon(shortOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	mem, drained, undrained := res.Rows[0], res.Rows[1], res.Rows[2]
	if mem.Released == 0 || drained.Released == 0 {
		t.Fatal("nothing released")
	}
	// The Section 6 finding, quantified: the virtio-mem path reuses
	// released memory for EPT tables at a high rate; the balloon path
	// strands its releases behind the migratetype wall.
	if mem.RN() < 0.3 {
		t.Errorf("virtio-mem reuse = %.2f, expected high", mem.RN())
	}
	if drained.RN() > mem.RN()/3 {
		t.Errorf("balloon reuse %.3f not clearly below virtio-mem %.3f",
			drained.RN(), mem.RN())
	}
	// Draining can only help (or leave it at zero).
	if drained.Reused < undrained.Reused {
		t.Errorf("net drain reduced reuse: %d vs %d", drained.Reused, undrained.Reused)
	}
}

func TestAblations(t *testing.T) {
	o := shortOpts()

	side, err := AblationSidedness(o)
	if err != nil {
		t.Fatal(err)
	}
	if side.ProfiledBits == 0 {
		t.Fatal("sidedness: no bits profiled")
	}
	if side.SingleSidedUsable != side.ProfiledBits || side.DoubleSidedUsable != 0 {
		t.Errorf("sidedness: single=%d double=%d of %d",
			side.SingleSidedUsable, side.DoubleSidedUsable, side.ProfiledBits)
	}

	ex, err := AblationNoExhaust(o)
	if err != nil {
		t.Fatal(err)
	}
	if ex.WithExhaust.RN() <= ex.WithoutExhaust.RN() {
		t.Errorf("exhaustion did not help: %.2f vs %.2f",
			ex.WithExhaust.RN(), ex.WithoutExhaust.RN())
	}

	spray, err := AblationSpraySize(o)
	if err != nil {
		t.Fatal(err)
	}
	first, last := spray.Rows[0], spray.Rows[len(spray.Rows)-1]
	if last.RN() <= first.RN() {
		t.Errorf("spray sweep flat: %.2f -> %.2f", first.RN(), last.RN())
	}

	thp, err := AblationTHP(o)
	if err != nil {
		t.Fatal(err)
	}
	if thp.Low21PreservedWithTHP < 0.99 {
		t.Errorf("THP preservation = %.2f", thp.Low21PreservedWithTHP)
	}
	if thp.Low21PreservedWithoutTHP > 0.2 {
		t.Errorf("no-THP preservation = %.2f, should collapse", thp.Low21PreservedWithoutTHP)
	}
	if thp.FlipsWithoutTHP >= thp.FlipsWithTHP && thp.FlipsWithTHP > 0 {
		t.Errorf("THP-off profiling found %d flips vs %d with THP",
			thp.FlipsWithoutTHP, thp.FlipsWithTHP)
	}

	pcp, err := AblationPCPNoise(o)
	if err != nil {
		t.Fatal(err)
	}
	if pcp.HeadroomSpray.Reused < pcp.ExactSpray.Reused {
		t.Errorf("headroom hurt reuse: %d vs %d",
			pcp.HeadroomSpray.Reused, pcp.ExactSpray.Reused)
	}
}

// The Section 5.3.1 sensitivity claim: shrinking the attacker's VM
// makes the attack monotonically and sharply slower.
func TestVMSizeSweep(t *testing.T) {
	res := VMSize(DefaultOptions())
	if len(res.Rows) < 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		prev, cur := res.Rows[i-1], res.Rows[i]
		if cur.GuestMem <= prev.GuestMem {
			t.Fatal("sweep not increasing")
		}
		if cur.Bound <= prev.Bound {
			t.Errorf("bound not increasing with VM size: %v -> %v", prev.Bound, cur.Bound)
		}
		if cur.ExpectedDays >= prev.ExpectedDays {
			t.Errorf("end-to-end estimate not decreasing with VM size: %v -> %v days",
				prev.ExpectedDays, cur.ExpectedDays)
		}
	}
	// The paper's 13 GiB configuration sits in the same months-long
	// regime as its own 192-day estimate (we use the exact 512·H/S
	// attempt count where the paper rounds to 512 flat).
	last := res.Rows[len(res.Rows)-1]
	if last.ExpectedDays < 200 || last.ExpectedDays > 320 {
		t.Errorf("13 GiB estimate = %.0f days, want months-long regime", last.ExpectedDays)
	}
	// Small tenants face substantially longer campaigns.
	first := res.Rows[0]
	if first.ExpectedDays < last.ExpectedDays*1.15 {
		t.Errorf("1 GiB estimate %.0f days not clearly above 13 GiB's %.0f",
			first.ExpectedDays, last.ExpectedDays)
	}
}
