package experiments

import (
	"time"

	"hyperhammer/internal/attack"
	"hyperhammer/internal/guest"
	"hyperhammer/internal/hostload"
	"hyperhammer/internal/kvm"
	"hyperhammer/internal/memdef"
	"hyperhammer/internal/report"
)

// Table1Row is one row of Table 1: memory profiling results.
type Table1Row struct {
	System      System
	Time        time.Duration
	Total       int
	OneToZero   int
	ZeroToOne   int
	Stable      int
	Exploitable int
	HammerOps   int
}

// Table1Result holds the full Table 1 reproduction.
type Table1Result struct {
	Rows []Table1Row
}

// Table renders the result in the paper's layout.
func (r *Table1Result) Table() *report.Table {
	t := report.NewTable("Table 1: Results of Memory Profiling",
		"System", "Time", "Total", "1->0", "0->1", "Stable", "Expl.")
	for _, row := range r.Rows {
		t.AddRow(row.System, row.Time, row.Total, row.OneToZero,
			row.ZeroToOne, row.Stable, row.Exploitable)
	}
	return t
}

// Table1 reproduces the Table 1 experiment: profile the attacker VM's
// memory on S1 and S2, reporting flip counts by direction, stability
// and exploitability, plus the simulated profiling time.
func Table1(o Options) (*Table1Result, error) {
	return planOne(o, (*Plan).Table1)
}

// Table1 registers the experiment's per-system profiling runs as
// independent units and returns the future of the assembled table.
func (p *Plan) Table1() *Future[*Table1Result] {
	f := &Future[*Table1Result]{}
	res := &Table1Result{}
	for _, sys := range []System{SystemS1, SystemS2} {
		sys := sys
		addTyped(p, "table1."+sys.String(),
			func(o Options) (Table1Row, error) { return profileSystem(o, sys) },
			func(row Table1Row) { res.Rows = append(res.Rows, row) })
	}
	p.finally(func() error { f.set(res); return nil })
	return f
}

func profileSystem(o Options, sys System) (Table1Row, error) {
	sc := o.scale()
	h, err := o.newHost(sys)
	if err != nil {
		return Table1Row{}, err
	}
	vm, err := h.CreateVM(kvm.VMConfig{MemSize: sc.vmSize, VFIOGroups: 1, BootSplits: sc.bootSplits})
	if err != nil {
		return Table1Row{}, err
	}
	gos := guest.Boot(vm)
	cfg := attackConfig(sc, sys)
	cfg.ProfileHugepages = int(sc.profileSize / memdef.HugePageSize)
	// Nest the attack phases under a per-system span so a cost profile
	// of this run attributes simulated time to S1 and S2 separately
	// (paths like "table1.S1;attack.profile").
	cfg.Trace = o.Trace
	cfg.Metrics = o.Metrics
	span := o.Trace.StartSpan("table1."+sys.String(), "system", sys.String())
	cfg.Span = span
	prof, err := attack.Profile(gos, cfg)
	span.End()
	if err != nil {
		return Table1Row{}, err
	}
	return Table1Row{
		System:      sys,
		Time:        prof.Duration,
		Total:       prof.Total,
		OneToZero:   prof.OneToZero,
		ZeroToOne:   prof.ZeroToOne,
		Stable:      prof.Stable,
		Exploitable: prof.Exploitable,
		HammerOps:   prof.HammerOps,
	}, nil
}

// attackConfig builds the attacker configuration for one system at a
// scale, using the bank function the attacker recovered offline.
func attackConfig(sc scale, sys System) attack.Config {
	cfg := attack.DefaultConfig(sc.geometry(sys).BankMasks)
	cfg.HostMemBits = sc.hostMemBits
	cfg.IOVAMappings = sc.iovaMaps
	cfg.TargetBits = sc.targetBits
	return cfg
}

// attachS3Load puts the OpenStack workload on a host (Figure 3b's
// starting condition).
func attachS3Load(h *kvm.Host, o Options) error {
	p := hostload.OpenStack()
	if o.Short {
		p.ExtraNoisePages = 6000
		p.ChurnHeld = 512
		p.ChurnPerTick = 32
	}
	_, err := hostload.Attach(h.Buddy, p, o.Seed^0x53)
	return err
}
