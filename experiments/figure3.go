package experiments

import (
	"fmt"

	"hyperhammer/internal/guest"
	"hyperhammer/internal/kvm"
	"hyperhammer/internal/memdef"
	"hyperhammer/internal/report"
	"time"
)

// Figure3Point is one sample of the noise-page trace.
type Figure3Point struct {
	// Mappings is how many IOVA mappings have been created.
	Mappings int
	// Seconds is the experiment's elapsed (simulated) time, with the
	// paper's artificial 1-second delay per 1,000 mappings.
	Seconds float64
	// NoisePages is the host's small-order unmovable free page count.
	NoisePages int
}

// Figure3Series is the trace for one system.
type Figure3Series struct {
	System System
	Points []Figure3Point
}

// Figure3Result reproduces Figure 3: noise pages at VM runtime while
// the attacker exhausts them via vIOMMU mappings. Part (a) is S1/S2,
// part (b) is S3.
type Figure3Result struct {
	Series []Figure3Series
	// Threshold512 and Threshold1024 are the paper's reference lines.
	Threshold512, Threshold1024 int
}

// Figure renders the result as a plot-ready figure.
func (r *Figure3Result) Figure() *report.Figure {
	f := report.NewFigure("Figure 3: noise pages at VM runtime",
		"time (s)", "MIGRATE_UNMOVABLE noise pages")
	for _, s := range r.Series {
		series := f.AddSeries(s.System.String())
		for _, p := range s.Points {
			series.Add(p.Seconds, float64(p.NoisePages))
		}
	}
	return f
}

// DropBelow returns the first sample time at which a system's noise
// fell below the given threshold, or -1 if it never did.
func (r *Figure3Result) DropBelow(sys System, threshold int) float64 {
	for _, s := range r.Series {
		if s.System != sys {
			continue
		}
		for _, p := range s.Points {
			if p.NoisePages < threshold {
				return p.Seconds
			}
		}
	}
	return -1
}

// Figure3 runs the exhaustion experiment of Section 5.2 on all three
// systems: allocate one guest page, map it at 60,000 IOVAs spaced
// 2 MiB apart with an artificial one-second delay per 1,000 mappings,
// and sample the host's noise-page count from /proc/pagetypeinfo
// concurrently.
func Figure3(o Options) (*Figure3Result, error) {
	return planOne(o, (*Plan).Figure3)
}

// Figure3 registers one exhaustion trace per system as independent
// units and returns the future of the assembled figure.
func (p *Plan) Figure3() *Future[*Figure3Result] {
	f := &Future[*Figure3Result]{}
	res := &Figure3Result{Threshold512: 512, Threshold1024: 1024}
	for _, sys := range []System{SystemS1, SystemS2, SystemS3} {
		sys := sys
		addTyped(p, "figure3."+sys.String(),
			func(o Options) (Figure3Series, error) {
				series, err := figure3System(o, sys)
				if err != nil {
					return Figure3Series{}, fmt.Errorf("figure 3 %s: %w", sys, err)
				}
				return series, nil
			},
			func(s Figure3Series) { res.Series = append(res.Series, s) })
	}
	p.finally(func() error { f.set(res); return nil })
	return f
}

func figure3System(o Options, sys System) (Figure3Series, error) {
	sc := o.scale()
	h, err := o.newHost(sys)
	if err != nil {
		return Figure3Series{}, err
	}
	vm, err := h.CreateVM(kvm.VMConfig{MemSize: sc.vmSize, VFIOGroups: 1, BootSplits: sc.bootSplits})
	if err != nil {
		return Figure3Series{}, err
	}
	gos := guest.Boot(vm)
	target, err := gos.AllocHuge(1)
	if err != nil {
		return Figure3Series{}, err
	}
	series := Figure3Series{System: sys}
	start := h.Clock.Now()
	sample := func(mappings int) {
		series.Points = append(series.Points, Figure3Point{
			Mappings:   mappings,
			Seconds:    (h.Clock.Now() - start).Seconds(),
			NoisePages: h.NoisePages(),
		})
	}
	sample(0)
	iova := memdef.IOVA(0x1_0000_0000)
	for m := 1; m <= sc.iovaMaps; m++ {
		if err := gos.MapDMA(0, iova, target); err != nil {
			return series, err
		}
		iova += memdef.HugePageSize
		if m%1000 == 0 {
			// The paper inserts an artificial 1 s delay per 1,000
			// mappings to make the trace legible.
			h.Clock.Advance(time.Second)
			sample(m)
		}
	}
	return series, nil
}
