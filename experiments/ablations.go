package experiments

import (
	"fmt"

	"hyperhammer/internal/attack"
	"hyperhammer/internal/guest"
	"hyperhammer/internal/kvm"
	"hyperhammer/internal/memdef"
	"hyperhammer/internal/report"
)

// Ablations evaluate the design choices DESIGN.md calls out. They all
// run at the short scale: each isolates a mechanism rather than
// reproducing a paper number.

// SidednessResult quantifies why virtio-mem's 2 MiB granularity forces
// single-sided hammering (Section 4.1).
type SidednessResult struct {
	// ProfiledBits is the number of stable exploitable bits found
	// with the single-sided border pattern.
	ProfiledBits int
	// SingleSidedUsable is how many of them survive the release
	// constraint (aggressors outside the released hugepage).
	SingleSidedUsable int
	// DoubleSidedUsable is how many would survive if the attacker
	// needed aggressors on both sides of the victim row.
	DoubleSidedUsable int
}

// Table renders the ablation.
func (r *SidednessResult) Table() *report.Table {
	t := report.NewTable("Ablation: hammer sidedness under the 2 MiB release constraint",
		"Variant", "Usable bits")
	t.AddRow("single-sided (paper)", r.SingleSidedUsable)
	t.AddRow("double-sided", r.DoubleSidedUsable)
	return t
}

// AblationSidedness profiles a guest and checks, for every found bit,
// whether the aggressor rows a single- or double-sided pattern needs
// would survive releasing the victim's hugepage. Double-sided needs
// rows on both sides of the victim; for victims at a hugepage border
// (the only ones the attacker can create) one of those rows is always
// inside the released hugepage.
func AblationSidedness(o Options) (*SidednessResult, error) {
	return planOne(o, (*Plan).AblationSidedness)
}

// AblationSidedness registers the single profiling unit and returns
// the future of the sidedness analysis.
func (p *Plan) AblationSidedness() *Future[*SidednessResult] {
	f := &Future[*SidednessResult]{}
	var res *SidednessResult
	addTyped(p, "ablation.sidedness", sidednessRun,
		func(r *SidednessResult) { res = r })
	p.finally(func() error { f.set(res); return nil })
	return f
}

func sidednessRun(o Options) (*SidednessResult, error) {
	sc := shortScale()
	h, err := o.newHostAt(sc, SystemS1)
	if err != nil {
		return nil, err
	}
	vm, err := h.CreateVM(kvm.VMConfig{MemSize: sc.vmSize, VFIOGroups: 1})
	if err != nil {
		return nil, err
	}
	gos := guest.Boot(vm)
	cfg := attackConfig(sc, SystemS1)
	prof, err := attack.Profile(gos, cfg)
	if err != nil {
		return nil, err
	}
	res := &SidednessResult{}
	rowsPerHuge := uint64(memdef.HugePageSize / (256 * memdef.KiB))
	for _, b := range prof.ExploitableBits(0) {
		res.ProfiledBits++
		// Single-sided: both aggressors are in a neighbouring
		// hugepage by construction; usable unless they collide with
		// the victim's hugepage (they cannot, Profile filters that).
		res.SingleSidedUsable++
		// Double-sided needs aggressors in the rows on both sides of
		// the victim. A victim row strictly inside its hugepage would
		// qualify — but border hammering only reaches rows 0 and 7.
		rowInHuge := (uint64(b.Flip.GVA) >> 18) & (rowsPerHuge - 1)
		if rowInHuge != 0 && rowInHuge != rowsPerHuge-1 {
			res.DoubleSidedUsable++
		}
	}
	return res, nil
}

// ExhaustAblationResult compares steering with and without the
// free-list exhaustion step (Section 4.2.1).
type ExhaustAblationResult struct {
	WithExhaust, WithoutExhaust Table2Row
}

// Table renders the ablation.
func (r *ExhaustAblationResult) Table() *report.Table {
	t := report.NewTable("Ablation: vIOMMU exhaustion on vs off",
		"Variant", "N", "E", "R", "R_N", "R_E")
	for _, v := range []struct {
		name string
		row  Table2Row
	}{{"with exhaustion", r.WithExhaust}, {"without", r.WithoutExhaust}} {
		t.AddRow(v.name, v.row.Released, v.row.EPTPages, v.row.Reused,
			report.Percent(v.row.RN()), report.Percent(v.row.RE()))
	}
	return t
}

// AblationNoExhaust measures how much of the released memory EPT
// allocations reach when the attacker does or does not drain the
// noise pages first.
func AblationNoExhaust(o Options) (*ExhaustAblationResult, error) {
	return planOne(o, (*Plan).AblationNoExhaust)
}

// AblationNoExhaust registers the exhaust-on and exhaust-off steering
// runs as independent units and returns the future of the comparison.
func (p *Plan) AblationNoExhaust() *Future[*ExhaustAblationResult] {
	f := &Future[*ExhaustAblationResult]{}
	res := &ExhaustAblationResult{}
	addTyped(p, "ablation.exhaust.on",
		func(o Options) (Table2Row, error) { return steerOnce(o, true, 8, 0) },
		func(row Table2Row) { res.WithExhaust = row })
	addTyped(p, "ablation.exhaust.off",
		func(o Options) (Table2Row, error) { return steerOnce(o, false, 8, 0) },
		func(row Table2Row) { res.WithoutExhaust = row })
	p.finally(func() error { f.set(res); return nil })
	return f
}

// SprayAblationResult sweeps the spray budget (Section 4.2.3's
// 512*(N+2) rule).
type SprayAblationResult struct {
	Rows []Table2Row
}

// Table renders the sweep.
func (r *SprayAblationResult) Table() *report.Table {
	t := report.NewTable("Ablation: spray size vs released-page coverage",
		"Spray pages", "N", "R", "R_N")
	for _, row := range r.Rows {
		t.AddRow(row.EPTPages, row.Released, row.Reused, report.Percent(row.RN()))
	}
	return t
}

// AblationSpraySize runs steering with spray budgets from well below
// to above 512*(B+2), showing the knee the paper's sizing rule sits
// on.
func AblationSpraySize(o Options) (*SprayAblationResult, error) {
	return planOne(o, (*Plan).AblationSpraySize)
}

// AblationSpraySize registers one steering unit per spray budget and
// returns the future of the sweep, assembled in budget order.
func (p *Plan) AblationSpraySize() *Future[*SprayAblationResult] {
	const blocks = 2
	f := &Future[*SprayAblationResult]{}
	res := &SprayAblationResult{}
	for _, sprayPages := range []int{256, 512, 1024, 512 * (blocks + 1), 512 * (blocks + 2)} {
		sprayPages := sprayPages
		addTyped(p, fmt.Sprintf("ablation.spray.%d", sprayPages),
			func(o Options) (Table2Row, error) { return steerOnce(o, true, blocks, sprayPages) },
			func(row Table2Row) { res.Rows = append(res.Rows, row) })
	}
	p.finally(func() error { f.set(res); return nil })
	return f
}

// steerOnce runs the Table 2 workload once at short scale with
// explicit knobs. sprayPages 0 means "the whole buffer".
func steerOnce(o Options, exhaust bool, blocks, sprayPages int) (Table2Row, error) {
	sc := shortScale()
	h, err := o.newHostAt(sc, SystemS1)
	if err != nil {
		return Table2Row{}, err
	}
	vm, err := h.CreateVM(kvm.VMConfig{MemSize: sc.vmSize, VFIOGroups: 1})
	if err != nil {
		return Table2Row{}, err
	}
	gos := guest.Boot(vm)
	gos.InstallAttackDriver()
	n := gos.FreeHugepages()
	base, err := gos.AllocHuge(n)
	if err != nil {
		return Table2Row{}, err
	}
	if exhaust {
		iova := memdef.IOVA(0x1_0000_0000)
		for m := 0; m < sc.iovaMaps; m++ {
			if err := gos.MapDMA(0, iova, base); err != nil {
				return Table2Row{}, err
			}
			iova += memdef.HugePageSize
		}
	}
	stride := (n - 1) / blocks
	for i, rel := 1, 0; i < n && rel < blocks; i += stride {
		if err := gos.ReleaseHugepage(base + memdef.GVA(i)*memdef.HugePageSize); err != nil {
			return Table2Row{}, err
		}
		rel++
	}
	if sprayPages == 0 {
		sprayPages = n
	}
	sprayed := 0
	for i := 0; i < n && sprayed < sprayPages; i++ {
		gva := base + memdef.GVA(i)*memdef.HugePageSize
		if _, err := gos.GPAOf(gva); err != nil {
			continue
		}
		if _, err := gos.Exec(gva); err != nil {
			return Table2Row{}, err
		}
		sprayed++
	}
	stats := vm.EPTReuse()
	return Table2Row{
		System:     SystemS1,
		SprayBytes: uint64(sprayed) * memdef.HugePageSize,
		Blocks:     stats.ReleasedBlocks,
		Released:   stats.ReleasedPages,
		EPTPages:   stats.EPTPages,
		Reused:     stats.ReusedPages,
	}, nil
}

// THPAblationResult compares profiling effectiveness with and without
// host transparent hugepages (Section 4.1's enabling assumption).
type THPAblationResult struct {
	// FlipsWithTHP / FlipsWithoutTHP are profiling yields under
	// identical budgets.
	FlipsWithTHP, FlipsWithoutTHP int
	// Low21PreservedWithTHP / WithoutTHP are the fractions of sampled
	// pages whose GVA and HPA agree on the low 21 bits.
	Low21PreservedWithTHP, Low21PreservedWithoutTHP float64
}

// Table renders the ablation.
func (r *THPAblationResult) Table() *report.Table {
	t := report.NewTable("Ablation: host THP on vs off",
		"Variant", "Profiling flips", "low-21-bit preservation")
	t.AddRow("THP on", r.FlipsWithTHP, report.Percent(r.Low21PreservedWithTHP))
	t.AddRow("THP off", r.FlipsWithoutTHP, report.Percent(r.Low21PreservedWithoutTHP))
	return t
}

// AblationTHP runs the same profiling budget on a THP host and a
// 4 KiB-backed host. Without THP the bank-class placement no longer
// corresponds to physical banks and the profiler's aggressor pairs
// land in unrelated rows.
func AblationTHP(o Options) (*THPAblationResult, error) {
	return planOne(o, (*Plan).AblationTHP)
}

// thpOutcome is one host's profiling yield and address preservation.
type thpOutcome struct {
	flips     int
	preserved float64
}

// AblationTHP registers the THP-on and THP-off hosts as independent
// units and returns the future of the comparison.
func (p *Plan) AblationTHP() *Future[*THPAblationResult] {
	f := &Future[*THPAblationResult]{}
	res := &THPAblationResult{}
	for _, thp := range []bool{true, false} {
		thp := thp
		name := "ablation.thp.off"
		if thp {
			name = "ablation.thp.on"
		}
		addTyped(p, name,
			func(o Options) (thpOutcome, error) { return thpRun(o, thp) },
			func(out thpOutcome) {
				if thp {
					res.FlipsWithTHP = out.flips
					res.Low21PreservedWithTHP = out.preserved
				} else {
					res.FlipsWithoutTHP = out.flips
					res.Low21PreservedWithoutTHP = out.preserved
				}
			})
	}
	p.finally(func() error { f.set(res); return nil })
	return f
}

// thpRun profiles one host and samples low-21-bit preservation.
func thpRun(o Options, thp bool) (thpOutcome, error) {
	sc := shortScale()
	// A small slice of the machine keeps the THP-off run (which
	// backs 512 pages per chunk individually) affordable.
	vmSize := uint64(512 * memdef.MiB)
	cfg := kvm.Config{
		Geometry:       sc.geometry(SystemS1),
		Fault:          sc.fault(SystemS1, o.Seed),
		THP:            thp,
		NXHugepages:    true,
		BootNoisePages: 500,
		Seed:           o.Seed,
		Trace:          o.Trace,
		Metrics:        o.Metrics,
		Inspect:        o.Inspect,
		Forensics:      o.Forensics,
	}
	h, err := kvm.NewHost(cfg)
	if err != nil {
		return thpOutcome{}, err
	}
	vm, err := h.CreateVM(kvm.VMConfig{MemSize: vmSize, VFIOGroups: 1})
	if err != nil {
		return thpOutcome{}, err
	}
	gos := guest.Boot(vm)
	acfg := attackConfig(sc, SystemS1)
	prof, err := attack.Profile(gos, acfg)
	if err != nil {
		return thpOutcome{}, err
	}
	// Sample low-21-bit preservation across the buffer.
	preserved, sampled := 0, 0
	for i := 0; i < prof.Buffer.Hugepages; i += 3 {
		gva := prof.Buffer.HugepageBase(i) + 0x12345
		hpa, err := gos.Hypercall(gva &^ 7)
		if err != nil {
			continue
		}
		sampled++
		if uint64(hpa)&(memdef.HugePageSize-1) == uint64(gva&^7)&(memdef.HugePageSize-1) {
			preserved++
		}
	}
	frac := 0.0
	if sampled > 0 {
		frac = float64(preserved) / float64(sampled)
	}
	return thpOutcome{flips: prof.Total, preserved: frac}, nil
}

// PCPAblationResult shows the "+2" headroom of the 512*(N+2) sizing
// rule absorbing the PCP and leftover-small-block noise.
type PCPAblationResult struct {
	// ExactSpray is reuse when spraying exactly 512*B pages.
	ExactSpray Table2Row
	// HeadroomSpray is reuse when spraying 512*(B+2).
	HeadroomSpray Table2Row
}

// Table renders the ablation.
func (r *PCPAblationResult) Table() *report.Table {
	t := report.NewTable("Ablation: spray headroom for PCP/header-cache noise",
		"Budget", "N", "R", "R_N")
	t.AddRow("512*B", r.ExactSpray.Released, r.ExactSpray.Reused, report.Percent(r.ExactSpray.RN()))
	t.AddRow("512*(B+2)", r.HeadroomSpray.Released, r.HeadroomSpray.Reused, report.Percent(r.HeadroomSpray.RN()))
	return t
}

// AblationPCPNoise compares the exact spray budget against the paper's
// padded budget.
func AblationPCPNoise(o Options) (*PCPAblationResult, error) {
	return planOne(o, (*Plan).AblationPCPNoise)
}

// AblationPCPNoise registers the exact and padded spray budgets as
// independent units and returns the future of the comparison.
func (p *Plan) AblationPCPNoise() *Future[*PCPAblationResult] {
	const blocks = 2
	f := &Future[*PCPAblationResult]{}
	res := &PCPAblationResult{}
	addTyped(p, "ablation.pcp.exact",
		func(o Options) (Table2Row, error) { return steerOnce(o, true, blocks, 512*blocks) },
		func(row Table2Row) { res.ExactSpray = row })
	addTyped(p, "ablation.pcp.headroom",
		func(o Options) (Table2Row, error) { return steerOnce(o, true, blocks, 512*(blocks+2)) },
		func(row Table2Row) { res.HeadroomSpray = row })
	p.finally(func() error { f.set(res); return nil })
	return f
}
