package experiments

import (
	"fmt"
	"time"

	"hyperhammer/internal/attack"
	"hyperhammer/internal/memdef"
	"hyperhammer/internal/report"
)

// AnalysisResult reproduces the closed-form analyses of Sections 5.3.1
// and 5.3.3, plus a Monte-Carlo cross-check of the bound.
type AnalysisResult struct {
	// GuestMem/HostMem are the sizes the bound is evaluated at.
	GuestMem, HostMem uint64
	// Bound is the Section 5.3.1 success-probability upper bound.
	Bound float64
	// ExpectedAttempts is 1/Bound.
	ExpectedAttempts float64
	// MonteCarlo is the sampled probability that a single
	// exploitable-bit flip lands an EPTE on an EPT page.
	MonteCarlo float64
	// EndToEnd holds the Section 5.3.3 end-to-end duration estimates.
	EndToEnd []EndToEndRow
}

// EndToEndRow is one system's expected end-to-end attack time.
type EndToEndRow struct {
	System          System
	FullProfile     time.Duration
	ExploitableBits int
	TargetBits      int
	PerAttempt      time.Duration
	ExpectedTotal   time.Duration
}

// Table renders the analysis summary.
func (r *AnalysisResult) Table() *report.Table {
	t := report.NewTable("Section 5.3 analysis",
		"Quantity", "Value")
	t.AddRow("success bound (13 GiB VM / 16 GiB host)", r.Bound)
	t.AddRow("expected attempts", r.ExpectedAttempts)
	t.AddRow("Monte-Carlo flip-hits-EPT probability", r.MonteCarlo)
	for _, row := range r.EndToEnd {
		t.AddRow("end-to-end estimate "+row.System.String(), row.ExpectedTotal)
	}
	return t
}

// analysisMem returns the (guest, host) sizes the bound is evaluated
// at: the paper's 13 GiB VM on a 16 GiB host.
func analysisMem() (uint64, uint64) {
	return uint64(13 * memdef.GiB), uint64(16 * memdef.GiB)
}

// analysisMCConfig parameterizes the Monte-Carlo cross-check.
func analysisMCConfig(o Options) attack.MonteCarloConfig {
	_, hostMem := analysisMem()
	return attack.MonteCarloConfig{
		Seed:    o.Seed,
		Samples: 500_000,
		// 12 GiB of 2 MiB sprays -> ~6144 EPT pages over 4M frames.
		EPTPages:          6144,
		HostFrames:        int(hostMem / memdef.PageSize),
		ExploitableBitLow: 21, ExploitableBitHigh: 34,
	}
}

// mcShards is how many units the Monte-Carlo sampling fans out as.
// The estimate is shard-count invariant (per-sample derived draws), so
// this only tunes scheduling granularity.
const mcShards = 8

// Analysis computes the paper's analytic results. profile supplies the
// measured Table 1 numbers the end-to-end estimate consumes; pass nil
// to use the paper's own published values (72 h / 96 bits on S1,
// 48 h / 90 bits on S2).
func Analysis(o Options, profile *Table1Result) *AnalysisResult {
	p := NewPlan(o)
	f := p.Analysis(resolved(profile))
	// The only units are Monte-Carlo shards, which cannot fail.
	_ = p.Run()
	return f.Get()
}

// Analysis registers the Monte-Carlo sampling as mcShards independent
// units (summed in shard order at delivery) and assembles the
// closed-form analysis once t1 — the Table 1 future feeding the
// end-to-end estimate, possibly resolved(nil) — is available.
func (p *Plan) Analysis(t1 *Future[*Table1Result]) *Future[*AnalysisResult] {
	f := &Future[*AnalysisResult]{}
	cfg := analysisMCConfig(p.o)
	hits := 0
	for s := 0; s < mcShards; s++ {
		s := s
		addTyped(p, fmt.Sprintf("analysis.mc.%d", s),
			func(Options) (int, error) { return attack.MonteCarloHits(cfg, s, mcShards), nil },
			func(h int) { hits += h })
	}
	p.finally(func() error {
		f.set(assembleAnalysis(t1.Get(), float64(hits)/float64(cfg.Samples)))
		return nil
	})
	return f
}

// assembleAnalysis builds the result from the sampled probability and
// the (optional) measured Table 1 rows.
func assembleAnalysis(profile *Table1Result, monteCarlo float64) *AnalysisResult {
	guestMem, hostMem := analysisMem()
	res := &AnalysisResult{
		GuestMem:         guestMem,
		HostMem:          hostMem,
		Bound:            attack.SuccessBound(guestMem, hostMem),
		ExpectedAttempts: attack.ExpectedAttempts(guestMem, hostMem),
		MonteCarlo:       monteCarlo,
	}
	rows := []EndToEndRow{
		{System: SystemS1, FullProfile: 72 * time.Hour, ExploitableBits: 96, TargetBits: 12},
		{System: SystemS2, FullProfile: 48 * time.Hour, ExploitableBits: 90, TargetBits: 12},
	}
	if profile != nil {
		rows = rows[:0]
		for _, pr := range profile.Rows {
			rows = append(rows, EndToEndRow{
				System:          pr.System,
				FullProfile:     pr.Time,
				ExploitableBits: pr.Exploitable,
				TargetBits:      12,
			})
		}
	}
	for _, row := range rows {
		if row.ExploitableBits == 0 {
			continue
		}
		row.PerAttempt = time.Duration(float64(row.FullProfile) *
			float64(row.TargetBits) / float64(row.ExploitableBits))
		// Section 5.3.3 assumes a flat 512 attempts ("at the limit"
		// of the bound) rather than the exact 512*host/guest ratio;
		// follow the paper's arithmetic so the 192/137-day numbers
		// reproduce.
		row.ExpectedTotal = attack.EndToEndEstimate(
			row.FullProfile, row.ExploitableBits, row.TargetBits, 512)
		res.EndToEnd = append(res.EndToEnd, row)
	}
	return res
}
