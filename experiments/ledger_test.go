package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"hyperhammer/internal/ledger"
)

// ledgerRun executes a small two-unit plan with a determinism ledger
// attached at the given worker count and returns the marshaled
// snapshot — exactly the bytes a run artifact's ledger section would
// embed.
func ledgerRun(t *testing.T, parallel int) []byte {
	t.Helper()
	o := shortOpts()
	o.Parallel = parallel
	o.Ledger = ledger.New(ledger.Config{Epoch: 250 * time.Millisecond})

	p := NewPlan(o)
	p.Table1()
	p.Figure3()
	if err := p.Run(); err != nil {
		t.Fatalf("plan run (parallel=%d): %v", parallel, err)
	}
	out, err := json.Marshal(o.Ledger.Snapshot())
	if err != nil {
		t.Fatalf("marshal ledger: %v", err)
	}
	return out
}

// TestParallelLedgerMatchesSequential is the ledger's own determinism
// gate: the fingerprint streams a plan folds at -parallel 1 and
// -parallel 4 must marshal byte-identically, because scoped recorders
// absorb in declaration order regardless of completion order.
func TestParallelLedgerMatchesSequential(t *testing.T) {
	seq := ledgerRun(t, 1)
	par := ledgerRun(t, 4)
	if !bytes.Equal(seq, par) {
		t.Errorf("ledgers differ between parallel 1 and 4:\nseq: %s\npar: %s", seq, par)
	}

	// The snapshot must carry real content, not a vacuous match: both
	// units present with sealed epochs and the core subsystem streams.
	var snap ledger.Snapshot
	if err := json.Unmarshal(seq, &snap); err != nil {
		t.Fatalf("unmarshal ledger: %v", err)
	}
	if len(snap.Units) != 5 {
		t.Fatalf("units = %d, want 5 (table1.S1/S2, figure3.S1-S3)", len(snap.Units))
	}
	hammered := false
	for _, u := range snap.Units {
		if len(u.Epochs) == 0 {
			t.Errorf("unit %s sealed no epochs", u.Unit)
		}
		streams := map[string]uint64{}
		for _, s := range u.Streams {
			streams[s.Stream] = s.Count
		}
		// Every hooked subsystem declares its stream on every unit; the
		// hammer-path streams only carry counts on the hammering units.
		for _, want := range []string{"kvm.rng", "dram.rng", "dram.row",
			"dram.flip", "phys.flip", "buddy.alloc", "ept.mutation",
			"guest.mapping"} {
			if _, ok := streams[want]; !ok {
				t.Errorf("unit %s: stream %q missing", u.Unit, want)
			}
		}
		if streams["kvm.rng"] == 0 || streams["buddy.alloc"] == 0 {
			t.Errorf("unit %s: boot-path streams empty: %v", u.Unit, streams)
		}
		if streams["dram.row"] > 0 && streams["dram.flip"] > 0 {
			hammered = true
		}
	}
	if !hammered {
		t.Error("no unit carried DRAM hammer stream counts")
	}
}
