package experiments

import (
	"fmt"
	"time"

	"hyperhammer/internal/attack"
	"hyperhammer/internal/kvm"
	"hyperhammer/internal/report"
)

// Table3Row is one row of Table 3: the cost of HyperHammer attempts on
// one system.
type Table3Row struct {
	System System
	// AvgAttempt is the mean simulated duration of one attack
	// attempt.
	AvgAttempt time.Duration
	// TimeToFirstSuccess is the simulated time until the first
	// successful attempt (0 if none succeeded within the budget).
	TimeToFirstSuccess time.Duration
	// AttemptsToFirstSuccess is the attempt index of the first
	// success (0 if none).
	AttemptsToFirstSuccess int
	// Attempts is the total attempts run.
	Attempts int
	// ProfiledBits is the number of exploitable bits the one-time
	// profile provided.
	ProfiledBits int
}

// Table3Result holds the Table 3 reproduction.
type Table3Result struct {
	Rows []Table3Row
}

// Table renders the result in the paper's layout.
func (r *Table3Result) Table() *report.Table {
	t := report.NewTable("Table 3: the cost of HyperHammer tests",
		"Setting", "Avg. Time/Attempt", "Time 1st Success", "Attempts 1st Success")
	for _, row := range r.Rows {
		first := "none"
		firstT := "-"
		if row.AttemptsToFirstSuccess > 0 {
			first = fmt.Sprint(row.AttemptsToFirstSuccess)
			firstT = report.FormatDuration(row.TimeToFirstSuccess)
		}
		t.AddRow(row.System, row.AvgAttempt, firstT, first)
	}
	return t
}

// Table3 reproduces the Table 3 experiment on S1 and S2: profile once
// (reusing results across respawns via the GPA-to-HPA hypercall),
// then run steer-and-exploit attempts on respawned VMs until the first
// verified escape. Success is verified by reading a host-planted magic
// value through the stolen EPT page, as in Section 5.3.2.
func Table3(o Options) (*Table3Result, error) {
	return planOne(o, (*Plan).Table3)
}

// Table3 registers one full campaign per system as independent units
// and returns the future of the assembled table. These are the
// dominant units of a full run — scheduling them early lets the pool
// overlap them with everything else.
func (p *Plan) Table3() *Future[*Table3Result] {
	f := &Future[*Table3Result]{}
	res := &Table3Result{}
	for _, sys := range []System{SystemS1, SystemS2} {
		sys := sys
		addTyped(p, "table3."+sys.String(),
			func(o Options) (Table3Row, error) {
				row, err := table3Run(o, sys)
				if err != nil {
					return Table3Row{}, fmt.Errorf("table 3 %s: %w", sys, err)
				}
				return row, nil
			},
			func(row Table3Row) { res.Rows = append(res.Rows, row) })
	}
	p.finally(func() error { f.set(res); return nil })
	return f
}

func table3Run(o Options, sys System) (Table3Row, error) {
	sc := o.scale()
	h, err := o.newHost(sys)
	if err != nil {
		return Table3Row{}, err
	}
	const magic = 0x48595045_52484d52 // "HYPERHMR"
	secret := h.PlantSecret(magic)

	cfg := attackConfig(sc, sys)
	maxAttempts := o.MaxAttempts
	if maxAttempts == 0 {
		maxAttempts = 600
		if o.Short {
			maxAttempts = 200
		}
	}
	// Per-system root span: the campaign's span tree nests under it,
	// so one cost profile separates S1 from S2 phase costs.
	span := o.Trace.StartSpan("table3."+sys.String(), "system", sys.String())
	cfg.Span = span
	campaign, err := attack.RunCampaign(h, attack.CampaignConfig{
		Attack:             cfg,
		VM:                 kvm.VMConfig{MemSize: sc.vmSize, VFIOGroups: 1, BootSplits: sc.bootSplits},
		MaxAttempts:        maxAttempts,
		StopAtFirstSuccess: true,
		VerifyHPA:          secret,
		VerifyValue:        magic,
		ChurnOps:           400,
	})
	span.End()
	if err != nil {
		return Table3Row{}, err
	}
	return Table3Row{
		System:                 sys,
		AvgAttempt:             campaign.AvgAttemptTime(),
		TimeToFirstSuccess:     campaign.TimeToFirstSuccess,
		AttemptsToFirstSuccess: campaign.FirstSuccessAttempt,
		Attempts:               len(campaign.Attempts),
		ProfiledBits:           campaign.ProfiledBits,
	}, nil
}
