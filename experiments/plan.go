package experiments

import (
	"sync"

	"hyperhammer/internal/forensics"
	"hyperhammer/internal/inspect"
	"hyperhammer/internal/ledger"
	"hyperhammer/internal/metrics"
	"hyperhammer/internal/profile"
	"hyperhammer/internal/sched"
	"hyperhammer/internal/trace"
)

// This file is the deterministic parallel experiment engine. A Plan
// accumulates the independent units the selected experiments decompose
// into — one booted host per unit, seeds derived only from
// Options.Seed — and runs them on internal/sched's bounded worker
// pool. Determinism does not depend on the worker count:
//
//   - Each unit runs against scoped telemetry (its own capture
//     recorder, registry, and profile builder), so concurrent hosts
//     never share a clock binding or cross-charge simulated time.
//
//   - Completed units are folded into the shared telemetry and into
//     their experiment's result in declaration order, not completion
//     order (sched delivers index-ordered).
//
//   - Finalizers (table assembly, closed-form analysis) run after all
//     units, in registration order.
//
// Consequently -parallel 1 and -parallel N produce byte-identical
// tables, metrics, traces, and run artifacts.

// Future is a placeholder for one experiment's assembled result,
// resolved when the plan's Run completes.
type Future[T any] struct {
	v  T
	ok bool
}

// Get returns the resolved value; the zero value before Run finishes.
func (f *Future[T]) Get() T {
	if f == nil {
		var zero T
		return zero
	}
	return f.v
}

func (f *Future[T]) set(v T) { f.v, f.ok = v, true }

// resolved wraps an already-known value, for feeding one experiment's
// output into another (Analysis consuming Table 1) outside a plan.
func resolved[T any](v T) *Future[T] {
	f := &Future[T]{}
	f.set(v)
	return f
}

// Resolved is the exported form of resolved, for callers that need to
// feed a fixed value (e.g. a nil Table 1) into a plan-registered
// consumer such as Analysis.
func Resolved[T any](v T) *Future[T] { return resolved(v) }

// unitScope is one unit's private telemetry, absorbed at delivery.
type unitScope struct {
	tr   *trace.Recorder
	reg  *metrics.Registry
	prof *profile.Builder
	ins  *inspect.Inspector
	fr   *forensics.Recorder
	led  *ledger.Recorder
}

// unitResult pairs a unit's value with its scope for the merge step.
type unitResult struct {
	v     any
	scope *unitScope
}

// Plan accumulates experiment units and runs them.
type Plan struct {
	o        Options
	profiler *profile.Builder
	units    []sched.Unit
	merges   []func(any)
	finals   []func() error

	mu       sync.Mutex
	schedule *sched.Schedule
}

// NewPlan creates an empty plan over the given options. Experiments
// registered on the plan observe o's seed and scale; o.Parallel sets
// the worker-pool size at Run (<= 0 selects GOMAXPROCS).
func NewPlan(o Options) *Plan { return &Plan{o: o} }

// Units returns the number of registered units.
func (p *Plan) Units() int { return len(p.units) }

// SetProfiler attaches the shared cost profiler completed units merge
// into. Each unit profiles live over its own scoped registry (counter
// deltas attribute correctly only while the unit's host is running),
// and the folded per-unit profile is absorbed at delivery. The caller
// must NOT also attach the profiler as a sink on the shared recorder:
// absorbed span events replaying through such a sink would be counted
// twice.
func (p *Plan) SetProfiler(b *profile.Builder) { p.profiler = b }

// add registers one unit. run receives scoped options; store receives
// the unit's value, in declaration order.
func (p *Plan) add(name string, run func(Options) (any, error), store func(any)) {
	parent := p.o
	profiler := p.profiler
	p.units = append(p.units, sched.Unit{
		Name: name,
		Run: func() (any, error) {
			uo := parent
			var scope *unitScope
			if parent.Trace != nil || parent.Metrics != nil || parent.Obs != nil ||
				parent.Inspect != nil || parent.Forensics != nil ||
				parent.Ledger != nil || profiler != nil {
				scope = &unitScope{}
				if parent.Trace != nil || profiler != nil || parent.Inspect != nil {
					scope.tr = trace.NewCapture()
				}
				if parent.Metrics != nil || profiler != nil || parent.Inspect != nil {
					scope.reg = metrics.New()
				}
				if profiler != nil {
					scope.prof = profile.NewBuilder(scope.reg)
					scope.tr.SetNamedSink("profile", scope.prof.Consume)
				}
				scope.ins = parent.Inspect.Scoped()
				scope.fr = parent.Forensics.Scoped()
				scope.led = parent.Ledger.Scoped()
				uo.Trace = scope.tr
				uo.Metrics = scope.reg
				uo.Obs = nil
				uo.Inspect = scope.ins
				uo.Forensics = scope.fr
				uo.Ledger = scope.led
			}
			v, err := run(uo)
			return unitResult{v: v, scope: scope}, err
		},
	})
	p.merges = append(p.merges, store)
}

// finally registers a post-run assembly step.
func (p *Plan) finally(fn func() error) { p.finals = append(p.finals, fn) }

// Run executes every registered unit on the worker pool and resolves
// every future. Results — telemetry and values alike — are folded in
// declaration order regardless of completion order; the first failing
// unit's error (lowest declaration index) aborts the plan.
func (p *Plan) Run() error {
	runner := sched.New(p.o.Parallel)
	sc, err := runner.RunTimed(p.units, func(i int, v any) error {
		ur := v.(unitResult)
		p.mergeScope(p.units[i].Name, ur.scope)
		if p.merges[i] != nil {
			p.merges[i](ur.v)
		}
		return nil
	})
	p.mu.Lock()
	p.schedule = sc
	p.mu.Unlock()
	p.recordSchedMetrics(sc)
	if err != nil {
		return err
	}
	for _, fn := range p.finals {
		if err := fn(); err != nil {
			return err
		}
	}
	return nil
}

// Schedule returns the host-cost schedule of the last Run (nil before
// any run). Safe for concurrent use with Run: the obs plane's
// /api/plan handler polls this from the server goroutine.
func (p *Plan) Schedule() *sched.Schedule {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.schedule
}

// PlanReport builds the host-cost analysis of the last Run: per-unit
// timings, critical path, parallel efficiency. Never nil — before any
// run it is the empty report — so it plugs directly into
// obs.Plane.SetPlanFunc and runartifact.Artifact.SetPlan.
func (p *Plan) PlanReport() *profile.PlanReport {
	return profile.BuildPlanReport(p.Schedule())
}

// recordSchedMetrics surfaces the schedule in the shared metrics
// registry (sched_units_total, sched_workers,
// sched_queue_wait_seconds) so /metrics and the Prometheus exporter
// carry scheduler telemetry live. These are *host* metrics — real
// wall-clock, different at every -parallel — so artifact builders must
// snapshot with StripHost to keep the artifact's metrics section
// deterministic; the host view belongs in the plan section.
func (p *Plan) recordSchedMetrics(sc *sched.Schedule) {
	if p.o.Metrics == nil || sc == nil {
		return
	}
	const unitsHelp = "Scheduled experiment units, by completion status."
	var delivered, undelivered uint64
	for _, u := range sc.Units {
		if u.Delivered {
			delivered++
		} else {
			undelivered++
		}
	}
	p.o.Metrics.Counter("sched_units_total", unitsHelp, "status", "delivered").Add(delivered)
	if undelivered > 0 {
		p.o.Metrics.Counter("sched_units_total", unitsHelp, "status", "undelivered").Add(undelivered)
	}
	p.o.Metrics.Gauge("sched_workers",
		"Effective worker-pool size of the last scheduled batch.").Set(int64(sc.Workers))
	hist := p.o.Metrics.Histogram("sched_queue_wait_seconds",
		"Host time units waited between declaration and start.", metrics.DefBuckets)
	for _, u := range sc.Units {
		if u.Started {
			hist.Observe(u.QueueWaitSeconds())
		}
	}
}

// mergeScope folds one completed unit's telemetry into the shared
// plane: the captured trace replays through the shared recorder (span
// IDs re-based, order preserved), the unit's cost profile and metrics
// snapshot are absorbed, and the live observability store takes one
// sample tagged with the unit's name.
func (p *Plan) mergeScope(name string, s *unitScope) {
	if s == nil {
		return
	}
	p.o.Trace.Absorb(s.tr)
	if p.profiler != nil && s.prof != nil {
		p.profiler.Absorb(s.prof.Snapshot())
	}
	if p.o.Metrics != nil && s.reg != nil {
		p.o.Metrics.Absorb(s.reg.Snapshot())
	}
	p.o.Inspect.Absorb(s.ins, name)
	p.o.Forensics.Absorb(s.fr, name)
	p.o.Ledger.Absorb(s.led, name)
	p.o.Obs.SampleUnit(name)
}

// addTyped is add with typed run/store callbacks.
func addTyped[T any](p *Plan, name string, run func(Options) (T, error), store func(T)) {
	p.add(name,
		func(o Options) (any, error) { return run(o) },
		func(v any) { store(v.(T)) })
}

// planOne builds a single-experiment plan, runs it, and returns the
// experiment's result: the compatibility path behind the package's
// original one-call-per-experiment API. Even at Parallel <= 1 the
// experiment runs through the same scoped-unit machinery as a parallel
// run, which is what makes the two byte-identical by construction.
func planOne[T any](o Options, register func(*Plan) *Future[T]) (T, error) {
	p := NewPlan(o)
	f := register(p)
	if err := p.Run(); err != nil {
		var zero T
		return zero, err
	}
	return f.Get(), nil
}
