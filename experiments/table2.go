package experiments

import (
	"fmt"

	"hyperhammer/internal/guest"
	"hyperhammer/internal/kvm"
	"hyperhammer/internal/memdef"
	"hyperhammer/internal/report"
)

// Table2Row is one row of Table 2: pages released by the VM versus
// pages reused by EPTs.
type Table2Row struct {
	System System
	// SprayBytes is the memory used for EPT creation (the paper's S).
	SprayBytes uint64
	// Blocks is the number of released page blocks (the paper's B).
	Blocks int
	// Released is B*512 (the paper's N).
	Released int
	// EPTPages is the number of leaf EPT pages in the system (E).
	EPTPages int
	// Reused is the number of released pages holding EPT pages (R).
	Reused int
}

// RN returns R/N.
func (r Table2Row) RN() float64 {
	if r.Released == 0 {
		return 0
	}
	return float64(r.Reused) / float64(r.Released)
}

// RE returns R/E.
func (r Table2Row) RE() float64 {
	if r.EPTPages == 0 {
		return 0
	}
	return float64(r.Reused) / float64(r.EPTPages)
}

// Table2Result holds the full Table 2 reproduction.
type Table2Result struct {
	Rows []Table2Row
}

// Table renders the result in the paper's layout.
func (r *Table2Result) Table() *report.Table {
	t := report.NewTable(
		"Table 2: pages released from the VM and released pages reused by EPTs",
		"Setting", "S", "B", "N", "E", "R", "R_N", "R_E")
	for _, row := range r.Rows {
		t.AddRow(row.System,
			fmt.Sprintf("%d GB", row.SprayBytes/memdef.GiB),
			row.Blocks, row.Released, row.EPTPages, row.Reused,
			report.Percent(row.RN()), report.Percent(row.RE()))
	}
	return t
}

// table2Settings returns the paper's (S, B) grid.
func table2Settings(sc scale) []struct {
	spray  uint64
	blocks int
} {
	if sc.vmSize < 13*memdef.GiB {
		// Short scale: proportional settings.
		g := sc.vmSize / 4
		return []struct {
			spray  uint64
			blocks int
		}{
			{1 * g, 24}, {2 * g, 24}, {2 * g, 16}, {2 * g, 8}, {2 * g, 4},
		}
	}
	return []struct {
		spray  uint64
		blocks int
	}{
		{5 * memdef.GiB, 100},
		{10 * memdef.GiB, 100},
		{10 * memdef.GiB, 70},
		{10 * memdef.GiB, 30},
		{10 * memdef.GiB, 20},
	}
}

// Table2 reproduces the Table 2 experiment on all three systems: for
// each (S, B) setting, exhaust the host's noise pages through vIOMMU,
// release B page blocks through the modified virtio-mem driver,
// trigger EPT creation over S bytes of the VM's memory, and use the
// hypervisor's released-PFN log and EPT-page dump to count reuse.
func Table2(o Options) (*Table2Result, error) {
	return planOne(o, (*Plan).Table2)
}

// Table2 registers each (system, S, B) row as an independent unit —
// every row boots its own fresh host — and returns the future of the
// assembled table.
func (p *Plan) Table2() *Future[*Table2Result] {
	f := &Future[*Table2Result]{}
	res := &Table2Result{}
	for _, sys := range []System{SystemS1, SystemS2, SystemS3} {
		for _, setting := range table2Settings(p.o.scale()) {
			sys, spray, blocks := sys, setting.spray, setting.blocks
			addTyped(p, fmt.Sprintf("table2.%s.S%d.B%d", sys, spray, blocks),
				func(o Options) (Table2Row, error) {
					row, err := table2Run(o, sys, spray, blocks)
					if err != nil {
						return Table2Row{}, fmt.Errorf("table 2 %s S=%d B=%d: %w", sys, spray, blocks, err)
					}
					return row, nil
				},
				func(row Table2Row) { res.Rows = append(res.Rows, row) })
		}
	}
	p.finally(func() error { f.set(res); return nil })
	return f
}

// table2Run performs one steering measurement on a fresh host.
func table2Run(o Options, sys System, sprayBytes uint64, blocks int) (Table2Row, error) {
	sc := o.scale()
	h, err := o.newHost(sys)
	if err != nil {
		return Table2Row{}, err
	}
	vm, err := h.CreateVM(kvm.VMConfig{MemSize: sc.vmSize, VFIOGroups: 1, BootSplits: sc.bootSplits})
	if err != nil {
		return Table2Row{}, err
	}
	gos := guest.Boot(vm)
	gos.InstallAttackDriver()

	n := gos.FreeHugepages()
	base, err := gos.AllocHuge(n)
	if err != nil {
		return Table2Row{}, err
	}

	// Step 1: exhaust noise pages (Section 4.2.1).
	iova := memdef.IOVA(0x1_0000_0000)
	for m := 0; m < sc.iovaMaps; m++ {
		if err := gos.MapDMA(0, iova, base); err != nil {
			return Table2Row{}, err
		}
		iova += memdef.HugePageSize
	}

	// Step 2: release B blocks (Section 4.2.2). The Table 2 workload
	// releases arbitrary blocks — reuse statistics do not depend on
	// the blocks being Rowhammer-vulnerable. Spread them through the
	// buffer, skipping the DMA target's hugepage.
	if blocks >= n-1 {
		return Table2Row{}, fmt.Errorf("experiments: B=%d too large for %d hugepages", blocks, n)
	}
	stride := (n - 1) / blocks
	released := 0
	for i := 1; i < n && released < blocks; i += stride {
		if err := gos.ReleaseHugepage(base + memdef.GVA(i)*memdef.HugePageSize); err != nil {
			return Table2Row{}, err
		}
		released++
	}

	// Step 3: trigger EPT creation over S bytes (Section 4.2.3).
	sprayHugepages := int(sprayBytes / memdef.HugePageSize)
	sprayed := 0
	for i := 0; i < n && sprayed < sprayHugepages; i++ {
		gva := base + memdef.GVA(i)*memdef.HugePageSize
		if _, err := gos.GPAOf(gva); err != nil {
			continue // released
		}
		if _, err := gos.Exec(gva); err != nil {
			return Table2Row{}, err
		}
		sprayed++
	}

	stats := vm.EPTReuse()
	return Table2Row{
		System:     sys,
		SprayBytes: sprayBytes,
		Blocks:     stats.ReleasedBlocks,
		Released:   stats.ReleasedPages,
		EPTPages:   stats.EPTPages,
		Reused:     stats.ReusedPages,
	}, nil
}
