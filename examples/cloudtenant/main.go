// Cloudtenant: the realistic multi-tenant scenario the paper's threat
// model describes (Section 3). A victim tenant's VM holds a database
// credential in its memory; the attacker, another ordinary tenant on
// the same host, runs the full HyperHammer campaign — respawning its
// VM after failed attempts — until it escapes KVM isolation and
// extracts the credential straight out of the victim VM's memory
// through host physical addresses.
//
// Runs at a reduced 4 GiB scale so the campaign lands in seconds.
package main

import (
	"fmt"
	"log"

	"hyperhammer"
)

func main() {
	geo, err := hyperhammer.NewGeometry(hyperhammer.Geometry{
		Name:      "cloud-host-4G (i3-10100 bank function)",
		Size:      4 * hyperhammer.GiB,
		BankMasks: hyperhammer.S1BankFunction(),
		RowShift:  18,
		RowBits:   14,
	})
	if err != nil {
		log.Fatal(err)
	}
	hostCfg := hyperhammer.S1(9)
	hostCfg.Geometry = geo
	hostCfg.Fault = hyperhammer.FaultModel{
		Seed: 9, CellsPerRow: 0.02,
		ThresholdMin: 120_000, ThresholdMax: 400_000,
		StableFraction: 0.54, FlakyP: 0.35,
		NeighborWeight1: 1.0, NeighborWeight2: 0.25,
	}
	hostCfg.BootNoisePages = 2000
	host, err := hyperhammer.NewHost(hostCfg)
	if err != nil {
		log.Fatal(err)
	}

	// The victim tenant: a small VM that writes a credential into its
	// own memory. It never interacts with the attacker.
	victimVM, err := host.CreateVM(hyperhammer.VMConfig{MemSize: 256 * hyperhammer.MiB})
	if err != nil {
		log.Fatal(err)
	}
	victim := hyperhammer.BootGuest(victimVM)
	credGVA, err := victim.AllocHuge(1)
	if err != nil {
		log.Fatal(err)
	}
	const credential = 0xDB_5EC2E7_0001
	if err := victim.Write64(credGVA, credential); err != nil {
		log.Fatal(err)
	}
	// Where the credential physically lives — known to the harness
	// for verification, never to the attacker.
	credHPA, err := victim.Hypercall(credGVA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("victim VM stored its credential (physically at HPA %#x, unknown to the attacker)\n", credHPA)

	// The attacker tenant: most of the remaining host memory, one
	// VFIO device with vIOMMU.
	attackCfg := hyperhammer.DefaultAttackConfig(hyperhammer.S1BankFunction())
	attackCfg.HostMemBits = 32
	attackCfg.IOVAMappings = 6000
	attackCfg.TargetBits = 3

	res, err := hyperhammer.RunCampaign(host, hyperhammer.CampaignConfig{
		Attack:             attackCfg,
		VM:                 hyperhammer.VMConfig{MemSize: 3328 * hyperhammer.MiB, VFIOGroups: 1, BootSplits: 150},
		MaxAttempts:        300,
		StopAtFirstSuccess: true,
		VerifyHPA:          credHPA,
		VerifyValue:        credential,
		ChurnOps:           400,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attacker profiled %d exploitable bits in %v simulated\n",
		res.ProfiledBits, res.ProfileDuration)
	if res.Successes == 0 {
		fmt.Printf("no escape within %d attempts; rerun with another seed\n", len(res.Attempts))
		return
	}
	fmt.Printf("attempt %d escaped after %v simulated attack time\n",
		res.FirstSuccessAttempt, res.TimeToFirstSuccess)
	fmt.Printf("attacker read the victim's credential %#x out of another VM's memory: inter-tenant isolation broken\n",
		uint64(credential))
}
