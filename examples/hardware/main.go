// Hardware: the hardware context around HyperHammer in one run.
//
//  1. The iTLB-Multihit trade-off (Section 4.2.3): on an affected CPU
//     without the NX-hugepage countermeasure, a malicious guest can
//     machine-check the host at will; the countermeasure stops the DoS
//     — and in doing so creates the EPT-page allocations HyperHammer
//     steers onto vulnerable frames.
//  2. The deployed Rowhammer defenses (Section 6): in-DRAM TRR stops
//     the paper's single-sided pattern but falls to a TRRespass-style
//     many-sided one, while ECC silently absorbs single-bit flips and
//     starves the profiler.
package main

import (
	"fmt"
	"log"

	"hyperhammer"
	"hyperhammer/experiments"
)

func main() {
	fmt.Println("== 1. the iTLB Multihit trade-off ==")
	demoMultihit(false)
	demoMultihit(true)

	o := experiments.Options{Seed: 7, Short: true}

	fmt.Println("\n== 2. in-DRAM TRR vs hammer patterns ==")
	trr, err := experiments.TRR(o)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(trr.Table())

	fmt.Println("\n== 3. ECC memory vs profiling ==")
	ecc, err := experiments.ECC(o)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ecc.Table())
}

// demoMultihit runs the guest DoS against an affected CPU with the
// countermeasure on or off, using the public API directly.
func demoMultihit(mitigated bool) {
	geo, err := hyperhammer.NewGeometry(hyperhammer.Geometry{
		Name: "affected-cpu-1G", Size: 1 * hyperhammer.GiB,
		BankMasks: hyperhammer.S1BankFunction(), RowShift: 18, RowBits: 12,
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := hyperhammer.S1(7)
	cfg.Geometry = geo
	cfg.NXHugepages = mitigated
	cfg.MultihitBugPresent = true
	cfg.BootNoisePages = 500
	host, err := hyperhammer.NewHost(cfg)
	if err != nil {
		log.Fatal(err)
	}
	vm, err := host.CreateVM(hyperhammer.VMConfig{MemSize: 256 * hyperhammer.MiB, VFIOGroups: 1})
	if err != nil {
		log.Fatal(err)
	}
	gos := hyperhammer.BootGuest(vm)
	base, err := gos.AllocHuge(4)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := gos.Exec(base); err != nil {
		log.Fatal(err)
	}
	crashed, err := gos.TriggerMultihitDoS(base)
	if err != nil {
		log.Fatal(err)
	}
	state := "host survives"
	if crashed {
		state = "HOST MACHINE-CHECKED (denial of service)"
	}
	fmt.Printf("NX-hugepage countermeasure %-3v -> guest DoS attempt: %s; hugepage splits so far: %d\n",
		mitigated, state, vm.Splits())
}
