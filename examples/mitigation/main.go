// Mitigation: the paper's Section 6 countermeasure in action. The
// same malicious guest runs its Page-Steering release step against two
// hosts: stock QEMU, which accepts voluntary unplugs it never asked
// for, and a host with the quarantine guard, which NACKs every request
// whose size-change pattern cannot be an honest answer to the
// hypervisor's target — while legitimate elastic-memory operation
// keeps working.
package main

import (
	"errors"
	"fmt"
	"log"

	"hyperhammer"
)

func main() {
	fmt.Println("== stock QEMU ==")
	runWith(hyperhammer.S1(7))

	fmt.Println("\n== with the quarantine countermeasure ==")
	guard, stats := hyperhammer.Quarantine()
	cfg := hyperhammer.S1(7)
	cfg.Quarantine = guard
	runWith(cfg)
	fmt.Printf("quarantine decisions: %d allowed, %d blocked\n", stats.Allowed, stats.Blocked)
}

func runWith(cfg hyperhammer.HostConfig) {
	host, err := hyperhammer.NewHost(cfg)
	if err != nil {
		log.Fatal(err)
	}
	vm, err := host.CreateVM(hyperhammer.VMConfig{
		MemSize: 2 * hyperhammer.GiB, VFIOGroups: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	gos := hyperhammer.BootGuest(vm)
	gos.InstallAttackDriver()
	base, err := gos.AllocHuge(8)
	if err != nil {
		log.Fatal(err)
	}

	// Malicious voluntary releases (Page Steering step 2).
	released, nacked := 0, 0
	for i := 0; i < 4; i++ {
		err := gos.ReleaseHugepage(base + hyperhammer.GVA(i)*hyperhammer.HugePageSize)
		switch {
		case err == nil:
			released++
		case errors.Is(err, hyperhammer.ErrNACK):
			nacked++
		default:
			log.Fatal(err)
		}
	}
	fmt.Printf("malicious unplug requests: %d accepted, %d NACKed\n", released, nacked)

	// Legitimate elastic memory: the hypervisor shrinks the VM by one
	// sub-block; the stock driver complies. This must keep working
	// under quarantine (the countermeasure's design constraint).
	dev := vm.MemDevice()
	dev.SetRequestedSize(dev.PluggedSize() - hyperhammer.HugePageSize)
	honest := hyperhammer.NewGuestDriver(dev)
	if _, err := honest.SyncToTarget(); err != nil {
		fmt.Printf("legitimate resize FAILED: %v\n", err)
		return
	}
	if dev.PluggedSize() == dev.RequestedSize() {
		fmt.Println("legitimate hypervisor-initiated resize: OK")
	}
}
