// Xen: the paper's Section 6 observation that Page Steering would be
// even easier on Xen. Xen's domain heap has no migration types: a
// guest returns pages with XENMEM_decrease_reservation and the very
// next p2m table allocations take them straight back — no vIOMMU
// exhaustion, no migratetype wall, no spray sizing.
package main

import (
	"fmt"
	"log"

	"hyperhammer"
)

func main() {
	// A 4 GiB Xen host with one 3 GiB HVM domain.
	heap := hyperhammer.XenHeap(0, 4*hyperhammer.GiB/hyperhammer.PageSize)
	dom, err := heap.CreateDomain(3 * hyperhammer.GiB)
	if err != nil {
		log.Fatal(err)
	}

	// The malicious domain voluntarily returns eight 2 MiB chunks —
	// in the real attack, the ones containing Rowhammer-vulnerable
	// bits it profiled.
	var victims []hyperhammer.GPA
	for i := 1; i <= 8; i++ {
		victims = append(victims, hyperhammer.GPA(i*41)*hyperhammer.HugePageSize)
	}

	// Then it forces p2m table allocations (hugepage splits, page
	// faults, ...). On Xen these come from the same heap the guest
	// just released into.
	released, reused, err := dom.SteeringReuse(victims, 8*512)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("released %d pages via XENMEM_decrease_reservation\n", released)
	fmt.Printf("p2m table pages landing on released memory: %d of %d (%.1f%%)\n",
		reused, 8*512, 100*float64(reused)/float64(8*512))
	fmt.Println("no exhaustion step was needed: Xen keeps one free list for guest and table pages.")
	fmt.Println("compare: on KVM the same releases are unreachable until the attacker drains")
	fmt.Println("the MIGRATE_UNMOVABLE noise pages through 60,000 vIOMMU mappings (Section 4.2.1).")
}
