// Quickstart: one pass through the whole HyperHammer pipeline on the
// paper's S1 machine — profile, Page-Steer, exploit — printing what
// each step found. A single attempt succeeds only with probability
// roughly VM/(512*host) (Section 5.3.1), so this example usually ends
// with "attempt failed"; see examples/cloudtenant for a full campaign
// that runs attempts until the escape lands.
package main

import (
	"fmt"
	"log"

	"hyperhammer"
)

func main() {
	// A 16 GiB Intel i3-10100 host with KVM defaults: THP on, the
	// iTLB-Multihit NX-hugepage countermeasure on, stock QEMU.
	host, err := hyperhammer.NewHost(hyperhammer.S1(1))
	if err != nil {
		log.Fatal(err)
	}

	// The attacker is an ordinary cloud tenant: a 13 GiB VM with one
	// passed-through NIC (VFIO + vIOMMU), as in Section 3.
	vm, err := host.CreateVM(hyperhammer.VMConfig{
		MemSize:    13 * hyperhammer.GiB,
		VFIOGroups: 1,
		BootSplits: 500,
	})
	if err != nil {
		log.Fatal(err)
	}
	guest := hyperhammer.BootGuest(vm)

	// The attacker knows the CPU model, so it knows the DRAM bank
	// function (recovered offline with DRAMDig, Section 5.1).
	cfg := hyperhammer.DefaultAttackConfig(hyperhammer.S1BankFunction())
	cfg.StopAfterExploitable = cfg.TargetBits // stop profiling at 12 usable bits

	// Step 1: memory profiling (Section 4.1).
	prof, err := hyperhammer.Profile(guest, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiling: %d flips (%d 1->0, %d 0->1), %d stable, %d attack-usable, %v simulated\n",
		prof.Total, prof.OneToZero, prof.ZeroToOne, prof.Stable, prof.AttackUsable, prof.Duration)

	// Step 2: Page Steering (Section 4.2).
	victims := prof.ExploitableBits(cfg.TargetBits)
	steer, err := hyperhammer.PageSteer(guest, cfg, prof.Buffer, victims)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("steering: %d vIOMMU mappings, %d vulnerable blocks released, %d hugepages split, %v simulated\n",
		steer.IOVAMappings, len(steer.Released), steer.Splits, steer.Duration)

	// Step 3: exploitation (Section 4.3).
	expl, err := hyperhammer.Exploit(guest, cfg, prof.Buffer, steer)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exploitation: %d bits hammered, %d mapping changes, %d EPT-format candidates, %d confirmed\n",
		expl.HammeredBits, expl.MappingChanges, expl.CandidateEPTPages, expl.ConfirmedEPTPages)

	if expl.Success() {
		// Arbitrary host physical memory is now readable and
		// writable through the stolen EPT page.
		w, err := expl.Escape.ReadHost(0x1000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ESCAPE: read host physical address 0x1000 = %#x\n", w)
		return
	}
	fmt.Printf("attempt failed (expected: per-attempt success bound is 1/%.0f); the full attack respawns and retries\n",
		hyperhammer.ExpectedAttempts(13*hyperhammer.GiB, 16*hyperhammer.GiB))
}
