module hyperhammer

go 1.22
