// Command hh-top is a terminal view of the simulated machine: the
// bucketed DRAM activation/flip heatmap, the memory-layout census, and
// the fired watchpoint alerts, refreshed live against a running obs
// server or rendered once from a saved run artifact.
//
// Usage:
//
//	hh-top                              # watch http://127.0.0.1:9190
//	hh-top -url http://host:port        # watch another obs server
//	hh-top -interval 5s                 # refresh cadence
//	hh-top -iterations 3                # stop after N refreshes
//	hh-top -once run.json               # render a saved artifact, exit
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"hyperhammer/internal/inspect"
	"hyperhammer/internal/runartifact"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:9190", "obs server base URL (scheme optional)")
	interval := flag.Duration("interval", 2*time.Second, "refresh interval in live mode")
	iterations := flag.Int("iterations", 0, "stop after this many refreshes (0 = until interrupted)")
	once := flag.String("once", "", "render this saved run artifact once and exit (no server needed)")
	flag.Parse()

	if *once != "" {
		if err := renderArtifact(*once); err != nil {
			fatal(err)
		}
		return
	}
	if err := watch(normalizeURL(*url), *interval, *iterations); err != nil {
		fatal(err)
	}
}

// renderArtifact is the offline path: the artifact's embedded
// introspection sections through the same renderers the live view
// uses (and that hh-inspect's heatmap subcommand shares).
func renderArtifact(path string) error {
	a, err := runartifact.ReadFile(path)
	if err != nil {
		return err
	}
	fmt.Printf("hh-top -once %s  (tool=%s seed=%d scale=%s simSeconds=%.1f)\n\n",
		path, a.Tool, a.Seed, a.Scale, a.SimSeconds)
	if a.Heatmap == nil && a.Census == nil && a.Alerts == nil {
		return fmt.Errorf("%s carries no introspection sections (rerun the producing tool with -obs or -artifact on a build with the inspection plane)", path)
	}
	if a.Heatmap != nil {
		fmt.Println(inspect.RenderHeatmap(*a.Heatmap))
	}
	if a.Census != nil {
		fmt.Println(inspect.RenderCensus(*a.Census))
	}
	if a.Alerts != nil {
		fmt.Println(inspect.RenderAlerts(*a.Alerts))
	}
	return nil
}

// watch polls the obs server's introspection endpoints and repaints.
func watch(base string, interval time.Duration, iterations int) error {
	client := &http.Client{Timeout: 10 * time.Second}
	for i := 0; ; i++ {
		var heat inspect.HeatmapSnapshot
		var census inspect.CensusSnapshot
		var alerts inspect.AlertsSnapshot
		var health struct {
			SimSeconds    float64 `json:"simSeconds"`
			UptimeSeconds float64 `json:"uptimeSeconds"`
			BusDropped    uint64  `json:"busDropped"`
		}
		if err := getJSON(client, base+"/api/heatmap", &heat); err != nil {
			return err
		}
		if err := getJSON(client, base+"/api/census", &census); err != nil {
			return err
		}
		if err := getJSON(client, base+"/api/alerts", &alerts); err != nil {
			return err
		}
		if err := getJSON(client, base+"/healthz", &health); err != nil {
			return err
		}
		// Classic top repaint: clear, home, redraw.
		fmt.Print("\x1b[2J\x1b[H")
		fmt.Printf("hh-top  %s  sim=%.1fs  uptime=%.0fs  busDropped=%d  (refresh %s)\n\n",
			base, health.SimSeconds, health.UptimeSeconds, health.BusDropped, interval)
		fmt.Println(inspect.RenderHeatmap(heat))
		fmt.Println(inspect.RenderCensus(census))
		fmt.Println(inspect.RenderAlerts(alerts))
		if iterations > 0 && i+1 >= iterations {
			return nil
		}
		time.Sleep(interval)
	}
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return fmt.Errorf("GET %s: decoding: %w", url, err)
	}
	return nil
}

func normalizeURL(u string) string {
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	return strings.TrimRight(u, "/")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hh-top:", err)
	os.Exit(1)
}
