// Command hh-bisect localizes where two runs' determinism ledgers
// first diverge.
//
// hh-diff answers *whether* two runs drifted; hh-bisect answers
// *where*: which plan unit, which subsystem stream, and which sim-time
// epoch first disagreed. Both runs must have been produced with
// -ledger-epoch set so their artifacts carry a ledger section (rolling
// per-stream fingerprints sealed at a fixed simulated interval).
// Because the fingerprints are rolling, the first divergent epoch
// brackets the first divergent event: everything before it matched
// byte for byte.
//
// Exit status: 0 when the ledgers are identical, 1 when they diverge,
// 2 on usage or read errors (including artifacts without a ledger
// section).
//
// Usage:
//
//	hh-bisect a.json b.json
//	hh-bisect -store runs/ RUN-ID-A RUN-ID-B
//	hh-bisect -json a.json b.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"hyperhammer/internal/ledger"
	"hyperhammer/internal/runartifact"
	"hyperhammer/internal/runstore"
)

func main() {
	var (
		storeDir = flag.String("store", "", "resolve the two arguments as run IDs in this run-history store directory instead of file paths")
		asJSON   = flag.Bool("json", false, "emit the divergence record (or null) as JSON instead of text")
		context  = flag.Int("context", 2, "fingerprint epochs of context to print around the divergence")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: hh-bisect [flags] a.json b.json")
		fmt.Fprintln(os.Stderr, "       hh-bisect -store DIR run-id-a run-id-b")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	a := load(*storeDir, flag.Arg(0))
	b := load(*storeDir, flag.Arg(1))
	if a.Ledger == nil || b.Ledger == nil {
		for i, art := range []*runartifact.Artifact{a, b} {
			if art.Ledger == nil {
				fmt.Fprintf(os.Stderr, "hh-bisect: %s has no ledger section (rerun with -ledger-epoch)\n", flag.Arg(i))
			}
		}
		os.Exit(2)
	}

	d := ledger.Bisect(a.Ledger, b.Ledger)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(d); err != nil {
			fmt.Fprintf(os.Stderr, "hh-bisect: %v\n", err)
			os.Exit(2)
		}
		if d != nil {
			os.Exit(1)
		}
		return
	}
	if d == nil {
		fmt.Printf("ledgers identical: %d unit(s), every stream fingerprint matches\n", len(a.Ledger.Units))
		return
	}

	// Headline: the first divergent stream, located in sim time.
	where := d.Stream
	if d.Unit != "" {
		where = d.Stream + " during " + d.Unit
	}
	switch {
	case d.Stream == "":
		fmt.Printf("ledgers diverge structurally: %s\n", d.Detail)
	case d.Epoch >= 0:
		fmt.Printf("%s diverged first at sim-time %s, epoch %d\n", where, simTime(d.SimSeconds), d.Epoch)
		fmt.Printf("  %s\n", d.Detail)
	default:
		fmt.Printf("%s diverged (final stream state; no sealed epoch localizes it)\n", where)
		fmt.Printf("  %s\n", d.Detail)
	}
	printContext(a.Ledger, b.Ledger, d, *context)
	os.Exit(1)
}

// load reads one artifact from a file path or, when storeDir is set,
// from the run-history store by run ID.
func load(storeDir, arg string) *runartifact.Artifact {
	if storeDir != "" {
		st, err := runstore.Open(storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hh-bisect: %v\n", err)
			os.Exit(2)
		}
		a, err := st.Load(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hh-bisect: %v\n", err)
			os.Exit(2)
		}
		return a
	}
	a, err := runartifact.ReadFile(arg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hh-bisect: %v\n", err)
		os.Exit(2)
	}
	return a
}

// printContext shows the divergent stream's fingerprint trail in both
// runs around the first divergent epoch, so the drift's onset — and
// everything that still matched before it — is visible at a glance.
func printContext(a, b *ledger.Snapshot, d *ledger.Divergence, context int) {
	if d.Stream == "" || d.Epoch < 0 {
		return
	}
	ua, ub := findUnit(a, d.Unit), findUnit(b, d.Unit)
	if ua == nil || ub == nil {
		return
	}
	lo := d.Epoch - context
	if lo < 0 {
		lo = 0
	}
	hi := d.Epoch + context
	fmt.Printf("  %-7s %-12s %-25s %-25s\n", "epoch", "sim-time", "run A "+d.Stream, "run B "+d.Stream)
	for e := lo; e <= hi && (e < len(ua.Epochs) || e < len(ub.Epochs)); e++ {
		fa, ca := epochFP(ua, e, d.Stream)
		fb, cb := epochFP(ub, e, d.Stream)
		mark := "  "
		if e == d.Epoch {
			mark = "* "
		} else if fa != fb {
			mark = "! "
		}
		sim := ""
		if e < len(ua.Epochs) {
			sim = simTime(ua.Epochs[e].SimSeconds)
		} else if e < len(ub.Epochs) {
			sim = simTime(ub.Epochs[e].SimSeconds)
		}
		fmt.Printf("%s%-7d %-12s %-25s %-25s\n", mark, e, sim, cell(fa, ca), cell(fb, cb))
	}
}

// findUnit locates the named unit trail (declaration order preserves
// duplicates' positions, but names are unique in practice).
func findUnit(s *ledger.Snapshot, unit string) *ledger.UnitLedger {
	for i := range s.Units {
		if s.Units[i].Unit == unit {
			return &s.Units[i]
		}
	}
	return nil
}

// epochFP returns one stream's fingerprint and count at an epoch, or
// empty when the epoch or stream is absent.
func epochFP(u *ledger.UnitLedger, e int, stream string) (string, uint64) {
	if e < 0 || e >= len(u.Epochs) {
		return "", 0
	}
	for _, sf := range u.Epochs[e].Streams {
		if sf.Stream == stream {
			return sf.FP, sf.Count
		}
	}
	return "", 0
}

func cell(fp string, count uint64) string {
	if fp == "" {
		return "-"
	}
	return fmt.Sprintf("%s (n=%d)", fp, count)
}

// simTime renders simulated seconds with millisecond precision, the
// resolution epoch boundaries are typically configured at.
func simTime(s float64) string {
	return fmt.Sprintf("%.3fs", s)
}
