// Command hh-trend folds a run-history store (written by `hyperhammer
// -store` / `hh-tables -store`) into cross-run figure trends: one time
// series per figure per experiment lineage, with min/median/last,
// ASCII sparklines, and first-regressed-run attribution.
//
// Simulated figures are held to hh-diff's zero tolerance — the
// simulation is seed-deterministic, so ANY drift between same-config
// runs of the same code is a determinism regression. Drift that
// coincides with a config-hash change is classified "config" instead
// (the lineage's knobs moved). Host-cost figures and benchmark ns/op
// are wall clock, tracked with the -host-tol machinery: listed by
// default, gated only when a tolerance is requested (bench defaults to
// ±30% like hh-diff).
//
// Exit status, matching hh-diff: 0 when no figure regressed, 1 when
// any did, 2 on usage or read errors.
//
// Usage:
//
//	hh-trend                       # trend report over ./store
//	hh-trend -store /path/to/store -json
//	hh-trend -last 10 -since 24h   # newest runs only
//	hh-trend -host-tol 0.5         # gate host wall-clock at ±50%
//	hh-trend -bench BENCH_a.json BENCH_b.json   # bench trajectories from files
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"hyperhammer/internal/benchfmt"
	"hyperhammer/internal/runstore"
)

func main() {
	opts := runstore.DefaultTrendOptions()
	var (
		storeDir = flag.String("store", "store", "run-history store directory to fold")
		jsonOut  = flag.Bool("json", false, "emit the trend report as JSON (the /api/trend document)")
		last     = flag.Int("last", 0, "keep only the newest N runs of each lineage (0 = all)")
		since    = flag.Duration("since", 0, "keep only runs ingested within this window (e.g. 24h; 0 = all)")
		hostTol  = flag.Float64("host-tol", opts.HostFrac, "relative tolerance on host-cost figures (1.0 lists without gating)")
		hostAbs  = flag.Float64("host-abs", opts.HostAbs, "absolute tolerance on host-cost figures (seconds)")
		benchTol = flag.Float64("bench-tol", opts.BenchFrac, "relative tolerance on benchmark ns/op")
		width    = flag.Int("width", 48, "sparkline width in cells (0 = unbounded)")
		bench    = flag.Bool("bench", false, "treat the positional arguments as BENCH_*.json documents (hh-benchjson output) and trend them in file order, no store needed")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: hh-trend [flags]")
		fmt.Fprintln(os.Stderr, "       hh-trend -bench BENCH_old.json [BENCH_newer.json ...]")
		flag.PrintDefaults()
	}
	flag.Parse()
	opts.LastN = *last
	opts.HostFrac, opts.HostAbs = *hostTol, *hostAbs
	opts.BenchFrac = *benchTol
	if *since > 0 {
		opts.Since = time.Now().UTC().Add(-*since)
	}

	var r *runstore.Report
	var store *runstore.Store
	switch {
	case *bench:
		if flag.NArg() == 0 {
			flag.Usage()
			os.Exit(2)
		}
		r = runstore.Build(benchEntries(flag.Args()), opts)
	case flag.NArg() != 0:
		flag.Usage()
		os.Exit(2)
	default:
		var err error
		if store, err = runstore.Open(*storeDir); err != nil {
			fatal(err)
		}
		defer store.Close()
		r = store.Trend(opts)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r); err != nil {
			fatal(err)
		}
	} else {
		if err := runstore.RenderReport(os.Stdout, r, *width); err != nil {
			fatal(err)
		}
		// Attribute each lineage's first divergence figure-by-figure by
		// diffing the stored artifacts on either side of it.
		for i := range r.Groups {
			g := &r.Groups[i]
			if !g.SimDrift || store == nil {
				continue
			}
			deltas, err := store.DriftDetail(g, 12)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hh-trend:", err)
				continue
			}
			fmt.Printf("\nfirst divergence of %s, figure by figure (run %s):\n", g.Key, g.FirstDriftRun)
			for _, d := range deltas {
				fmt.Printf("  %-8s %-40s %g -> %g (%+g)\n", d.Kind, d.Key, d.A, d.B, d.Delta)
			}
		}
	}
	if r.Regressed() {
		os.Exit(1)
	}
}

// benchEntries loads BENCH documents as index entries, sequenced in
// argument order (oldest first), so committed benchmark history trends
// without ever having been ingested into a store.
func benchEntries(paths []string) []runstore.IndexEntry {
	entries := make([]runstore.IndexEntry, 0, len(paths))
	for i, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		var out benchfmt.Output
		err = json.NewDecoder(f).Decode(&out)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: corrupt bench document: %v", path, err))
		}
		if out.Benchmarks == nil {
			fatal(fmt.Errorf("%s: not a bench document (no benchmarks field)", path))
		}
		e := runstore.EntryFromBench(&out)
		e.Seq = i + 1
		e.RunID = path
		entries = append(entries, e)
	}
	return entries
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hh-trend:", err)
	os.Exit(2)
}
