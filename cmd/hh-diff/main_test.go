package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hyperhammer/internal/runartifact"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadArtifact(t *testing.T) {
	path := writeTemp(t, "art.json", `{"version":1,"tool":"hyperhammer","seed":4,"simSeconds":1.5,"metrics":{}}`)
	a, b, err := load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if a == nil || b != nil {
		t.Fatalf("want artifact, got (artifact=%v, bench=%v)", a != nil, b != nil)
	}
	if a.Seed != 4 {
		t.Errorf("seed = %d, want 4", a.Seed)
	}
}

func TestLoadBench(t *testing.T) {
	path := writeTemp(t, "bench.json", `{"generatedAt":"2026-01-01T00:00:00Z","benchmarks":[]}`)
	a, b, err := load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if a != nil || b == nil {
		t.Fatalf("want bench, got (artifact=%v, bench=%v)", a != nil, b != nil)
	}
}

// A truncated artifact must produce a clear corruption message, not a
// bench-decoder fallback error.
func TestLoadTruncatedArtifact(t *testing.T) {
	path := writeTemp(t, "trunc.json", `{"version":1,"tool":"hyperhammer","seed":4,"metr`)
	_, _, err := load(path)
	if err == nil {
		t.Fatal("load succeeded on a truncated artifact")
	}
	if !strings.Contains(err.Error(), "corrupt or truncated JSON") {
		t.Errorf("error %q does not name the corruption", err)
	}
	if strings.Contains(err.Error(), "bench") {
		t.Errorf("error %q blames the bench decoder for a damaged artifact", err)
	}
}

func TestLoadEmptyFile(t *testing.T) {
	path := writeTemp(t, "empty.json", "")
	_, _, err := load(path)
	if err == nil {
		t.Fatal("load succeeded on an empty file")
	}
	if !strings.Contains(err.Error(), "corrupt or truncated JSON") {
		t.Errorf("error %q does not name the corruption", err)
	}
}

func TestLoadUnknownDocument(t *testing.T) {
	path := writeTemp(t, "other.json", `{"hello":"world"}`)
	_, _, err := load(path)
	if err == nil {
		t.Fatal("load succeeded on an unrelated JSON document")
	}
	if !strings.Contains(err.Error(), "neither a run artifact") {
		t.Errorf("error %q does not explain the document kind", err)
	}
}

func TestLoadFutureArtifactVersion(t *testing.T) {
	path := writeTemp(t, "future.json", `{"version":99,"tool":"hyperhammer","metrics":{}}`)
	_, _, err := load(path)
	if err == nil {
		t.Fatal("load accepted an artifact from the future")
	}
	if !strings.Contains(err.Error(), "newer than supported") {
		t.Errorf("error %q does not report the version mismatch", err)
	}
}

// TestConfigNotice: the same-config context line appears exactly when
// the runs' deterministic config hashes differ, including for
// artifacts written before the header carried a hash.
func TestConfigNotice(t *testing.T) {
	mk := func(rounds string) *runartifact.Artifact {
		a := runartifact.New("hyperhammer", 4, "short")
		a.Config["hammer-rounds"] = rounds
		return a
	}
	if got := configNotice(mk("150000"), mk("150000")); got != "" {
		t.Errorf("same-config comparison produced a notice: %q", got)
	}
	got := configNotice(mk("150000"), mk("400000"))
	if !strings.Contains(got, "comparing same-config runs? no") {
		t.Errorf("different-config notice missing: %q", got)
	}

	// Stamped headers win over recomputation; a pre-hash artifact
	// (empty header field) is hashed on the fly and still matches.
	stamped := mk("150000")
	stamped.Stamp()
	if got := configNotice(stamped, mk("150000")); got != "" {
		t.Errorf("stamped-vs-legacy same-config comparison produced a notice: %q", got)
	}

	// Host-only config keys never trigger the notice (they are
	// excluded from the hash by design).
	hostOnly := mk("150000")
	hostOnly.Config["parallel"] = "8"
	if got := configNotice(mk("150000"), hostOnly); got != "" {
		t.Errorf("host-only config change produced a notice: %q", got)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, _, err := load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("load succeeded on a missing file")
	}
}
