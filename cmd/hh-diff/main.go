// Command hh-diff compares two runs and gates regressions.
//
// It accepts either two run artifacts (written by `hyperhammer
// -artifact` / `hh-tables -artifact`, or a committed baseline under
// testdata/baselines/) or two benchmark documents (BENCH_*.json from
// hh-benchjson); the file kind is auto-detected. Because the
// simulation clock is simulated and runs are seed-deterministic,
// simulated figures are compared exactly by default — any drift means
// behavior changed — while wall-clock ns/op gets a generous band.
//
// Exit status: 0 when every figure is within tolerance, 1 when any
// drifted beyond it, 2 on usage or read errors.
//
// Usage:
//
//	hh-diff old.json new.json
//	hh-diff -sim-tol 0.05 -count-tol 0.05 testdata/baselines/short-seed4.json run.json
//	hh-diff -bench-tol 0.5 BENCH_old.json BENCH_new.json
//	hh-diff -host-tol 0.5 old.json new.json   # gate plan host timings at ±50%
//	hh-diff -all old.json new.json     # list in-tolerance rows too
//
// The plan section (host-cost schedule) is special: host wall-clock is
// non-deterministic, so its shape (unit count, per-unit completion)
// compares exactly under -count-tol while its durations compare under
// -host-tol, whose default of 1.0 lists them without ever gating.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"hyperhammer/internal/benchfmt"
	"hyperhammer/internal/runartifact"
)

func main() {
	var (
		tol      = runartifact.DefaultTolerances()
		all      = flag.Bool("all", false, "print every compared figure, not just those beyond tolerance")
		simTol   = flag.Float64("sim-tol", tol.SimFrac, "relative tolerance on simulated-time figures")
		simAbs   = flag.Float64("sim-abs", tol.SimAbs, "absolute tolerance on simulated-time figures (seconds)")
		countTol = flag.Float64("count-tol", tol.CountFrac, "relative tolerance on counters and outcomes")
		countAbs = flag.Float64("count-abs", tol.CountAbs, "absolute tolerance on counters and outcomes")
		benchTol = flag.Float64("bench-tol", tol.BenchFrac, "relative tolerance on benchmark ns/op")
		hostTol  = flag.Float64("host-tol", tol.HostFrac, "relative tolerance on plan host-time figures (1.0 lists without gating)")
		hostAbs  = flag.Float64("host-abs", tol.HostAbs, "absolute tolerance on plan host-time figures (seconds)")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: hh-diff [flags] old.json new.json")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	tol.SimFrac, tol.SimAbs = *simTol, *simAbs
	tol.CountFrac, tol.CountAbs = *countTol, *countAbs
	tol.BenchFrac = *benchTol
	tol.HostFrac, tol.HostAbs = *hostTol, *hostAbs

	oldPath, newPath := flag.Arg(0), flag.Arg(1)
	artOld, benchOld, err := load(oldPath)
	if err != nil {
		fatal(err)
	}
	artNew, benchNew, err := load(newPath)
	if err != nil {
		fatal(err)
	}

	var d *runartifact.Diff
	switch {
	case artOld != nil && artNew != nil:
		if notice := configNotice(artOld, artNew); notice != "" {
			fmt.Println(notice)
		}
		d = runartifact.Compare(artOld, artNew, tol)
	case benchOld != nil && benchNew != nil:
		d = runartifact.CompareBench(benchOld, benchNew, tol)
	default:
		fatal(fmt.Errorf("%s and %s are different document kinds (artifact vs bench)", oldPath, newPath))
	}

	if *all || d.Regressed() {
		fmt.Print(d.Table(!*all).String())
	}
	fmt.Println(d.Summary())
	if d.Regressed() {
		os.Exit(1)
	}
}

// configNotice returns the one-line context printed when the two runs
// claim different simulated inputs: figure drift is then expected
// configuration divergence, not necessarily a regression. Empty for
// same-config comparisons, and never a gating change — the tolerances
// still decide the exit status alone. Hashes are recomputed for
// artifacts written before the header carried them.
func configNotice(a, b *runartifact.Artifact) string {
	oldHash, newHash := a.ConfigHash, b.ConfigHash
	if oldHash == "" {
		oldHash = a.ComputeConfigHash()
	}
	if newHash == "" {
		newHash = b.ComputeConfigHash()
	}
	if oldHash == newHash {
		return ""
	}
	return fmt.Sprintf("comparing same-config runs? no (config %s vs %s): expect figure drift from the config change", oldHash, newHash)
}

// load reads path as a run artifact or a benchmark document. Exactly
// one of the returns is non-nil on success.
//
// The kind is sniffed before full decoding so a damaged file is
// reported for what it is: a truncated artifact used to fall through
// to the bench decoder and surface as a baffling "not a bench
// document" error.
func load(path string) (*runartifact.Artifact, *benchfmt.Output, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var probe struct {
		Version     int             `json:"version"`
		GeneratedAt string          `json:"generatedAt"`
		Benchmarks  json.RawMessage `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, nil, fmt.Errorf("%s: corrupt or truncated JSON: %v", path, err)
	}
	if probe.Version != 0 {
		a, err := runartifact.Read(bytes.NewReader(data))
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		return a, nil, nil
	}
	if probe.GeneratedAt == "" && probe.Benchmarks == nil {
		return nil, nil, fmt.Errorf("%s: neither a run artifact (no version field) nor a bench document", path)
	}
	var out benchfmt.Output
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, nil, fmt.Errorf("%s: corrupt bench document: %v", path, err)
	}
	return nil, &out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hh-diff:", err)
	os.Exit(2)
}
