package main

// Parsing behavior is covered in internal/benchfmt, where the
// implementation lives. This file intentionally keeps only what is
// specific to the command itself.

import (
	"strings"
	"testing"

	"hyperhammer/internal/benchfmt"
)

// TestParseThroughCommandSchema sanity-checks the command still
// produces the documented schema via the shared package.
func TestParseThroughCommandSchema(t *testing.T) {
	out, err := benchfmt.Parse(strings.NewReader(
		"BenchmarkSteerShort-8-4   \t      10\t  52400000 ns/op\nok  \thyperhammer\t1.2s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Ok || len(out.Benchmarks) != 1 {
		t.Fatalf("out = %+v", out)
	}
	b := out.Benchmarks[0]
	if b.Name != "BenchmarkSteerShort" || b.Procs != 4 || b.Metrics["ns/op"] != 52400000 {
		t.Errorf("bench = %+v", b)
	}
}
