package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: hyperhammer
cpu: Intel(R) Xeon(R) CPU
BenchmarkTable1MemoryProfiling-8   	       1	1524000000 ns/op	        52.00 bits_found	        68.20 sim_hours/profile	 5242880 B/op	    1024 allocs/op
BenchmarkSteerShort   	      10	  52400000 ns/op
--- BENCH: BenchmarkNoise
    bench_test.go:42: some log line
PASS
ok  	hyperhammer	12.345s
`

func TestParse(t *testing.T) {
	out, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if out.Goos != "linux" || out.Goarch != "amd64" || out.Pkg != "hyperhammer" {
		t.Errorf("headers = %+v", out)
	}
	if !out.Ok {
		t.Error("ok line not detected")
	}
	if len(out.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %+v", out.Benchmarks)
	}
	b := out.Benchmarks[0]
	if b.Name != "BenchmarkTable1MemoryProfiling" || b.Procs != 8 || b.Runs != 1 {
		t.Errorf("bench 0 = %+v", b)
	}
	for unit, want := range map[string]float64{
		"ns/op": 1524000000, "bits_found": 52,
		"sim_hours/profile": 68.2, "B/op": 5242880, "allocs/op": 1024,
	} {
		if got := b.Metrics[unit]; got != want {
			t.Errorf("%s = %v, want %v", unit, got, want)
		}
	}
	b1 := out.Benchmarks[1]
	if b1.Name != "BenchmarkSteerShort" || b1.Procs != 1 || b1.Runs != 10 {
		t.Errorf("bench 1 = %+v", b1)
	}
	if b1.Metrics["ns/op"] != 52400000 {
		t.Errorf("bench 1 metrics = %+v", b1.Metrics)
	}
}

func TestParseEmptyAndGarbage(t *testing.T) {
	out, err := Parse(strings.NewReader("FAIL\nsomething else\nBenchmarkBroken trailing junk\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Benchmarks) != 0 || out.Ok {
		t.Errorf("out = %+v", out)
	}
}

func TestSplitProcs(t *testing.T) {
	for _, tc := range []struct {
		in    string
		name  string
		procs int
	}{
		{"BenchmarkX-8", "BenchmarkX", 8},
		{"BenchmarkX", "BenchmarkX", 1},
		{"BenchmarkX-y", "BenchmarkX-y", 1},
		{"Benchmark-Sub-16", "Benchmark-Sub", 16},
	} {
		name, procs := splitProcs(tc.in)
		if name != tc.name || procs != tc.procs {
			t.Errorf("splitProcs(%q) = %q,%d", tc.in, name, procs)
		}
	}
}
