// Command hh-benchjson converts `go test -bench` text output into a
// machine-readable JSON document, so CI can archive benchmark results
// (including the custom sim-time metrics the harness reports via
// b.ReportMetric) and diff them across commits with cmd/hh-diff.
//
// Parsing and the document schema live in internal/benchfmt, shared
// with hh-diff; this command is the thin write-side wrapper.
//
// Usage:
//
//	go test -bench . -benchmem | hh-benchjson -o BENCH_full.json
//	hh-benchjson bench.txt               # read a saved log, JSON to stdout
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"hyperhammer/internal/benchfmt"
)

func main() {
	outPath := ""
	args := os.Args[1:]
	if len(args) >= 2 && args[0] == "-o" {
		outPath = args[1]
		args = args[2:]
	}
	in := io.Reader(os.Stdin)
	if len(args) == 1 {
		f, err := os.Open(args[0])
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	} else if len(args) > 1 {
		fmt.Fprintln(os.Stderr, "usage: hh-benchjson [-o out.json] [bench.txt]")
		os.Exit(2)
	}

	out, err := benchfmt.Parse(in)
	if err != nil {
		fatal(err)
	}
	w := io.Writer(os.Stdout)
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
	if len(out.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "hh-benchjson: warning: no benchmark lines found")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hh-benchjson:", err)
	os.Exit(1)
}
