// Command hh-benchjson converts `go test -bench` text output into a
// machine-readable JSON document, so CI can archive benchmark results
// (including the custom sim-time metrics the harness reports via
// b.ReportMetric) and diff them across commits.
//
// Usage:
//
//	go test -bench . -benchmem | hh-benchjson -o BENCH_full.json
//	hh-benchjson bench.txt               # read a saved log, JSON to stdout
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name without the -P GOMAXPROCS suffix.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS the benchmark ran under.
	Procs int `json:"procs"`
	// Runs is the iteration count (b.N).
	Runs int64 `json:"runs"`
	// Metrics maps unit to value: ns/op, B/op, allocs/op, and any
	// custom units from b.ReportMetric (e.g. sim_hours/profile).
	Metrics map[string]float64 `json:"metrics"`
}

// Output is the whole document.
type Output struct {
	// GeneratedAt is the wall-clock parse time (RFC 3339).
	GeneratedAt string `json:"generatedAt"`
	// Goos/Goarch/Pkg/CPU echo the `go test` header lines when present.
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Ok reports whether a final "ok" line was seen (the run completed).
	Ok         bool        `json:"ok"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	outPath := ""
	args := os.Args[1:]
	if len(args) >= 2 && args[0] == "-o" {
		outPath = args[1]
		args = args[2:]
	}
	in := io.Reader(os.Stdin)
	if len(args) == 1 {
		f, err := os.Open(args[0])
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	} else if len(args) > 1 {
		fmt.Fprintln(os.Stderr, "usage: hh-benchjson [-o out.json] [bench.txt]")
		os.Exit(2)
	}

	out, err := Parse(in)
	if err != nil {
		fatal(err)
	}
	w := io.Writer(os.Stdout)
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
	if len(out.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "hh-benchjson: warning: no benchmark lines found")
	}
}

// Parse reads `go test -bench` output and extracts every benchmark
// line plus the run headers. Lines it doesn't recognize (test logs,
// PASS markers) are skipped; benchmarks are passed through to the
// document in input order.
func Parse(r io.Reader) (*Output, error) {
	out := &Output{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Benchmarks:  []Benchmark{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			out.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			out.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			out.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			out.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "ok "):
			out.Ok = true
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line); ok {
				out.Benchmarks = append(out.Benchmarks, b)
			}
		}
	}
	return out, sc.Err()
}

// parseBench parses one result line:
//
//	BenchmarkName-8  3  123456 ns/op  42.5 sim_hours/profile  16 B/op  2 allocs/op
func parseBench(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	name, procs := splitProcs(fields[0])
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Procs: procs, Runs: runs, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

// splitProcs splits the trailing -N GOMAXPROCS suffix off a benchmark
// name (absent when GOMAXPROCS=1).
func splitProcs(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name, 1
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n <= 0 {
		return name, 1
	}
	return name[:i], n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hh-benchjson:", err)
	os.Exit(1)
}
