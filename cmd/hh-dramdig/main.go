// Command hh-dramdig reverse engineers the DRAM bank address function
// of the simulated machines from row-buffer-conflict timing, the
// DRAMDig step of Section 5.1, and checks the THP-compatibility
// property the attack depends on.
//
// Usage:
//
//	hh-dramdig              # both machines
//	hh-dramdig -system S2
package main

import (
	"flag"
	"fmt"
	"os"

	"hyperhammer"
)

func main() {
	system := flag.String("system", "", "S1, S2, or empty for both")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	run := func(name string, cfg hyperhammer.HostConfig) {
		res, err := hyperhammer.RecoverBankFunction(cfg.Geometry, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hh-dramdig: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("%s (%s):\n", name, cfg.Geometry.Name)
		fmt.Printf("  %d banks from %d XOR masks (%d timing probes)\n",
			res.Banks, len(res.Masks), res.ProbeCount)
		for _, m := range res.Masks {
			fmt.Printf("  mask %#07x (bits", m)
			for b := 0; b < 64; b++ {
				if m&(1<<b) != 0 {
					fmt.Printf(" %d", b)
				}
			}
			fmt.Println(")")
		}
		fmt.Printf("  all bits below 22 (THP-compatible): %v\n\n", res.AllBitsBelow(22))
	}
	switch *system {
	case "S1":
		run("S1", hyperhammer.S1(*seed))
	case "S2":
		run("S2", hyperhammer.S2(*seed))
	case "":
		run("S1", hyperhammer.S1(*seed))
		run("S2", hyperhammer.S2(*seed))
	default:
		fmt.Fprintln(os.Stderr, "hh-dramdig: -system must be S1 or S2")
		os.Exit(2)
	}
}
