// Command hh-inspect analyzes a recorded JSONL trace file offline:
// the span tree with simulated per-phase timing and correct parent
// attribution, a per-kind event census, a phase timeline, and a
// summary of anomalies (lost events, unmatched spans, malformed
// lines).
//
// Usage:
//
//	hyperhammer -short -trace run.trace
//	hh-inspect run.trace             # everything
//	hh-inspect -tree run.trace       # just the span tree
//	hh-inspect -kinds -anomalies run.trace
//	hh-inspect -timeline -width 100 run.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"hyperhammer/internal/obs"
	"hyperhammer/internal/report"
	"time"
)

func main() {
	tree := flag.Bool("tree", false, "print the span tree with per-phase simulated timing")
	kinds := flag.Bool("kinds", false, "print the per-kind event census")
	timeline := flag.Bool("timeline", false, "print top-level spans as a timeline over simulated time")
	anomalies := flag.Bool("anomalies", false, "print what the trace says went wrong")
	width := flag.Int("width", 72, "timeline width in characters")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hh-inspect [-tree] [-kinds] [-timeline] [-anomalies] trace.jsonl")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	in, err := obs.Inspect(f)
	if err != nil {
		fatal(err)
	}

	// No section selected: print everything.
	all := !*tree && !*kinds && !*timeline && !*anomalies
	out := os.Stdout
	fmt.Fprintf(out, "%s: %d events, %s simulated\n\n",
		flag.Arg(0), in.Events,
		report.FormatDuration(time.Duration(in.LastSimSeconds*float64(time.Second))))
	if all || *tree {
		in.WriteSpanTree(out)
		fmt.Fprintln(out)
	}
	if all || *timeline {
		in.WriteTimeline(out, *width)
		fmt.Fprintln(out)
	}
	if all || *kinds {
		in.WriteKinds(out)
		fmt.Fprintln(out)
	}
	if all || *anomalies {
		in.WriteAnomalies(out)
	}
	if in.SeqGaps > 0 || in.MalformedLines > 0 {
		os.Exit(1) // the trace is damaged; make scripts notice
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hh-inspect:", err)
	os.Exit(1)
}
