// Command hh-inspect analyzes a recorded JSONL trace file offline:
// the span tree with simulated per-phase timing and correct parent
// attribution, a per-kind event census, a phase timeline, and a
// summary of anomalies (lost events, unmatched spans, malformed
// lines).
//
// The heatmap subcommand instead reads a run artifact (-artifact
// output) and renders its embedded DRAM heatmap, layout census, and
// watchpoint alert table — the same ASCII view as hh-top -once. The
// forensics subcommand renders the artifact's flip-provenance section
// (the same summary hh-why prints). The plan subcommand renders the
// artifact's host-cost schedule — Gantt chart, worker utilization,
// critical path — through the same renderer as hh-plan. The history
// subcommand renders a run-history store's index (written with -store)
// offline — the same table /api/history serves live.
//
// Usage:
//
//	hyperhammer -short -trace run.trace
//	hh-inspect run.trace             # everything
//	hh-inspect -tree run.trace       # just the span tree
//	hh-inspect -kinds -anomalies run.trace
//	hh-inspect -timeline -width 100 run.trace
//	hh-inspect heatmap run.json      # introspection sections of an artifact
//	hh-inspect forensics run.json    # flip-provenance section of an artifact
//	hh-inspect plan run.json         # host-cost schedule of an artifact
//	hh-inspect history store         # run-history store index (hh-trend's data)
package main

import (
	"flag"
	"fmt"
	"os"

	"hyperhammer/internal/inspect"
	"hyperhammer/internal/obs"
	"hyperhammer/internal/profile"
	"hyperhammer/internal/report"
	"hyperhammer/internal/runartifact"
	"hyperhammer/internal/runstore"
	"time"
)

func main() {
	// Subcommand dispatch rides ahead of flag parsing so the trace
	// flags don't apply to artifact rendering.
	if len(os.Args) > 1 && os.Args[1] == "heatmap" {
		if len(os.Args) != 3 {
			fmt.Fprintln(os.Stderr, "usage: hh-inspect heatmap artifact.json")
			os.Exit(2)
		}
		if err := renderHeatmap(os.Args[2]); err != nil {
			fatal(err)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "forensics" {
		if len(os.Args) != 3 {
			fmt.Fprintln(os.Stderr, "usage: hh-inspect forensics artifact.json")
			os.Exit(2)
		}
		if err := renderForensics(os.Args[2]); err != nil {
			fatal(err)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "plan" {
		if len(os.Args) != 3 {
			fmt.Fprintln(os.Stderr, "usage: hh-inspect plan artifact.json")
			os.Exit(2)
		}
		if err := renderPlan(os.Args[2]); err != nil {
			fatal(err)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "history" {
		if len(os.Args) != 3 {
			fmt.Fprintln(os.Stderr, "usage: hh-inspect history storedir")
			os.Exit(2)
		}
		if err := renderHistory(os.Args[2]); err != nil {
			fatal(err)
		}
		return
	}
	tree := flag.Bool("tree", false, "print the span tree with per-phase simulated timing")
	kinds := flag.Bool("kinds", false, "print the per-kind event census")
	timeline := flag.Bool("timeline", false, "print top-level spans as a timeline over simulated time")
	anomalies := flag.Bool("anomalies", false, "print what the trace says went wrong")
	width := flag.Int("width", 72, "timeline width in characters")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hh-inspect [-tree] [-kinds] [-timeline] [-anomalies] trace.jsonl")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	in, err := obs.Inspect(f)
	if err != nil {
		fatal(err)
	}

	// No section selected: print everything.
	all := !*tree && !*kinds && !*timeline && !*anomalies
	out := os.Stdout
	fmt.Fprintf(out, "%s: %d events, %s simulated\n\n",
		flag.Arg(0), in.Events,
		report.FormatDuration(time.Duration(in.LastSimSeconds*float64(time.Second))))
	if all || *tree {
		in.WriteSpanTree(out)
		fmt.Fprintln(out)
	}
	if all || *timeline {
		in.WriteTimeline(out, *width)
		fmt.Fprintln(out)
	}
	if all || *kinds {
		in.WriteKinds(out)
		fmt.Fprintln(out)
	}
	if all || *anomalies {
		in.WriteAnomalies(out)
	}
	if in.SeqGaps > 0 || in.MalformedLines > 0 {
		os.Exit(1) // the trace is damaged; make scripts notice
	}
}

// renderHeatmap prints an artifact's introspection sections with the
// renderers shared with hh-top.
func renderHeatmap(path string) error {
	a, err := runartifact.ReadFile(path)
	if err != nil {
		return err
	}
	if a.Heatmap == nil && a.Census == nil && a.Alerts == nil {
		return fmt.Errorf("%s carries no introspection sections (produce it with -obs or -artifact)", path)
	}
	fmt.Printf("%s: tool=%s seed=%d scale=%s simSeconds=%.1f\n\n",
		path, a.Tool, a.Seed, a.Scale, a.SimSeconds)
	if a.Heatmap != nil {
		fmt.Println(inspect.RenderHeatmap(*a.Heatmap))
	}
	if a.Census != nil {
		fmt.Println(inspect.RenderCensus(*a.Census))
	}
	if a.Alerts != nil {
		fmt.Println(inspect.RenderAlerts(*a.Alerts))
	}
	return nil
}

// renderForensics prints an artifact's flip-provenance section — the
// same campaign summary cmd/hh-why renders (see hh-why for per-attempt
// lineage drill-down).
func renderForensics(path string) error {
	a, err := runartifact.ReadFile(path)
	if err != nil {
		return err
	}
	if a.Forensics == nil {
		return fmt.Errorf("%s carries no forensics section (produce it with -obs or -artifact)", path)
	}
	fmt.Printf("%s: tool=%s seed=%d scale=%s simSeconds=%.1f\n\n",
		path, a.Tool, a.Seed, a.Scale, a.SimSeconds)
	a.Forensics.WriteSummary(os.Stdout)
	return nil
}

// renderPlan prints an artifact's host-cost schedule with the renderer
// shared with hh-plan: Gantt chart, worker utilization, critical path,
// and top-slack units.
func renderPlan(path string) error {
	a, err := runartifact.ReadFile(path)
	if err != nil {
		return err
	}
	if a.Plan == nil {
		return fmt.Errorf("%s carries no plan section (produce it with -artifact on a build with the host-cost plane)", path)
	}
	fmt.Printf("%s: tool=%s seed=%d scale=%s simSeconds=%.1f\n\n",
		path, a.Tool, a.Seed, a.Scale, a.SimSeconds)
	return profile.RenderPlan(os.Stdout, a.Plan, 72)
}

// renderHistory prints a run-history store's index offline, mirroring
// /api/history: one row per ingested run with its config/content
// hashes and headline figures. hh-trend folds the same index into
// cross-run figure trends.
func renderHistory(dir string) error {
	if _, err := os.Stat(dir); err != nil {
		return fmt.Errorf("%s: %w (produce a store with hyperhammer -store or hh-tables -store)", dir, err)
	}
	s, err := runstore.Open(dir)
	if err != nil {
		return err
	}
	defer s.Close()
	return runstore.RenderHistory(os.Stdout, s.History())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hh-inspect:", err)
	os.Exit(1)
}
