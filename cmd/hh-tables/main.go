// Command hh-tables regenerates the paper's evaluation artifacts: every
// table, the figure, and the supplementary analyses, on the simulated
// substrate.
//
// Usage:
//
//	hh-tables -all                 # everything (Table 3 takes minutes)
//	hh-tables -table 1 -table 2    # specific tables
//	hh-tables -figure 3            # the noise-page traces
//	hh-tables -analysis -extras    # closed-form + Section 6 analyses
//	hh-tables -ablations           # design-choice ablations
//	hh-tables -short -all          # reduced-scale quick pass
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"hyperhammer"
	"hyperhammer/experiments"
	"hyperhammer/internal/obs"
)

type intList []int

func (l *intList) String() string { return fmt.Sprint(*l) }

func (l *intList) Set(v string) error {
	n, err := strconv.Atoi(v)
	if err != nil {
		return err
	}
	*l = append(*l, n)
	return nil
}

func main() {
	var tables intList
	figure := flag.Bool("figure", false, "reproduce Figure 3 (noise-page traces)")
	analysis := flag.Bool("analysis", false, "Section 5.3 closed-form analysis")
	extras := flag.Bool("extras", false, "Section 5.1/6 analyses (DRAMDig, quarantine, Xen, balloon)")
	ablations := flag.Bool("ablations", false, "design-choice ablations")
	all := flag.Bool("all", false, "everything")
	short := flag.Bool("short", false, "reduced scale (seconds instead of minutes)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	attempts := flag.Int("attempts", 0, "Table 3 attempt cap (0 = default)")
	tracePath := flag.String("trace", "", "write JSONL trace events from every booted host to this file")
	metricsPath := flag.String("metrics", "", "write aggregated metrics to this file at exit (Prometheus text; .json suffix selects a JSON snapshot)")
	obsAddr := flag.String("obs", "", "serve the live observability plane on this address (status page, /metrics, /api/series, SSE events, pprof)")
	obsSample := flag.Duration("obs-sample", time.Second, "simulated-time interval between observability samples")
	obsHold := flag.Duration("obs-hold", 0, "keep the observability server up this long (wall clock) after the run ends")
	artifactPath := flag.String("artifact", "", "write the self-describing run bundle (config, metrics, cost profile) to this file for hh-diff")
	flag.Var(&tables, "table", "table number to reproduce (repeatable: 1, 2, 3)")
	flag.Parse()

	o := experiments.Options{Seed: *seed, Short: *short, MaxAttempts: *attempts}
	var traceFile *os.File
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hh-tables: %v\n", err)
			os.Exit(1)
		}
		traceFile = f
		// Buffered; closeTrace flushes on every exit path (os.Exit
		// skips defers, and fail() exits through os.Exit).
		o.Trace = hyperhammer.NewTrace(bufio.NewWriterSize(f, 1<<20), 0)
	} else if *artifactPath != "" {
		// Cost profiling folds span events, so the artifact needs a
		// recorder even without a trace file.
		o.Trace = hyperhammer.NewTrace(nil, 0)
	}
	closeTrace := func() {
		if o.Trace == nil {
			return
		}
		if err := o.Trace.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "hh-tables: flushing trace:", err)
		}
		if n := o.Trace.EncodeErrors(); n > 0 {
			fmt.Fprintf(os.Stderr, "hh-tables: %d trace events lost to encode/flush errors\n", n)
		}
		if traceFile != nil {
			traceFile.Close()
		}
	}
	if *metricsPath != "" || *obsAddr != "" || *artifactPath != "" {
		o.Metrics = hyperhammer.NewMetrics()
	}
	var profiler *hyperhammer.CostProfiler
	if *artifactPath != "" {
		profiler = hyperhammer.NewCostProfiler(o.Metrics)
		o.Trace.SetNamedSink("profile", profiler.Consume)
	}
	// Progress lines carry the simulated clock of the most recently
	// booted host — each experiment restarts it.
	log := obs.NewLogger(os.Stderr, o.Metrics.SimTime, nil)
	flushMetrics := func() {
		if o.Metrics == nil || *metricsPath == "" {
			return
		}
		f, err := os.Create(*metricsPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hh-tables: %v\n", err)
			return
		}
		defer f.Close()
		if strings.HasSuffix(*metricsPath, ".json") {
			err = o.Metrics.WriteJSON(f)
		} else {
			err = o.Metrics.WriteProm(f)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "hh-tables: %v\n", err)
		}
	}
	var srv *obs.Server
	if *obsAddr != "" {
		plane := hyperhammer.NewObs(o.Metrics, hyperhammer.ObsConfig{SampleEvery: *obsSample})
		plane.AttachProfile(profiler)
		o.Obs = plane
		var err error
		if srv, err = plane.Serve(*obsAddr); err != nil {
			fmt.Fprintf(os.Stderr, "hh-tables: %v\n", err)
			os.Exit(1)
		}
		log.Info("observability plane serving", "url", "http://"+srv.Addr()+"/")
	}
	scale := "full"
	if *short {
		scale = "short"
	}
	buildArtifact := func() *hyperhammer.RunArtifact {
		a := hyperhammer.NewRunArtifact("hh-tables", *seed, scale)
		a.CreatedAt = time.Now().UTC().Format(time.RFC3339)
		a.Config["short"] = strconv.FormatBool(*short)
		a.Config["attempts"] = strconv.Itoa(*attempts)
		a.Config["selection"] = strings.Join(os.Args[1:], " ")
		a.SimSeconds = o.Metrics.SimTime().Seconds()
		a.Metrics = o.Metrics.Snapshot()
		a.SetProfile(profiler.Snapshot())
		return a
	}
	if *artifactPath != "" {
		o.Obs.SetArtifactFunc(func() any { return buildArtifact() })
	}
	writeArtifact := func() {
		if *artifactPath == "" {
			return
		}
		if err := buildArtifact().WriteFile(*artifactPath); err != nil {
			fmt.Fprintln(os.Stderr, "hh-tables:", err)
			return
		}
		log.Info("run artifact written", "path", *artifactPath)
	}
	shutdown := func() {
		flushMetrics()
		writeArtifact()
		closeTrace()
		if srv != nil {
			if *obsHold > 0 {
				log.Info("holding observability server before exit", "hold", obsHold.String())
				time.Sleep(*obsHold)
			}
			srv.Close()
		}
	}
	want := func(n int) bool {
		if *all {
			return true
		}
		for _, t := range tables {
			if t == n {
				return true
			}
		}
		return false
	}
	ran := false
	fail := func(what string, err error) {
		fmt.Fprintf(os.Stderr, "hh-tables: %s: %v\n", what, err)
		shutdown()
		os.Exit(1)
	}
	run := func(what string) {
		ran = true
		log.Info("running", "artifact", what)
	}

	var t1 *experiments.Table1Result
	if want(1) {
		run("table 1")
		var err error
		if t1, err = experiments.Table1(o); err != nil {
			fail("table 1", err)
		}
		fmt.Println(t1.Table())
	}
	if want(2) {
		run("table 2")
		t2, err := experiments.Table2(o)
		if err != nil {
			fail("table 2", err)
		}
		fmt.Println(t2.Table())
	}
	if want(3) {
		run("table 3")
		t3, err := experiments.Table3(o)
		if err != nil {
			fail("table 3", err)
		}
		fmt.Println(t3.Table())
	}
	if *figure || *all {
		run("figure 3")
		f3, err := experiments.Figure3(o)
		if err != nil {
			fail("figure 3", err)
		}
		fmt.Println(f3.Figure())
		fmt.Println("summary:")
		fmt.Println(f3.Figure().Summary())
	}
	if *analysis || *all {
		run("analysis")
		fmt.Println(experiments.Analysis(o, t1).Table())
		fmt.Println(experiments.VMSize(o).Table())
	}
	if *extras || *all {
		run("extras")
		dd, err := experiments.DRAMDig(o)
		if err != nil {
			fail("dramdig", err)
		}
		fmt.Println(dd.Table())
		mit, err := experiments.Mitigation(o)
		if err != nil {
			fail("mitigation", err)
		}
		fmt.Println(mit.Table())
		xen, err := experiments.Xen(o)
		if err != nil {
			fail("xen", err)
		}
		fmt.Println(xen.Table())
		bal, err := experiments.Balloon(o)
		if err != nil {
			fail("balloon", err)
		}
		fmt.Println(bal.Table())
		trr, err := experiments.TRR(o)
		if err != nil {
			fail("trr", err)
		}
		fmt.Println(trr.Table())
		ecc, err := experiments.ECC(o)
		if err != nil {
			fail("ecc", err)
		}
		fmt.Println(ecc.Table())
		mh, err := experiments.Multihit(o)
		if err != nil {
			fail("multihit", err)
		}
		fmt.Println(mh.Table())
	}
	if *ablations || *all {
		run("ablations")
		side, err := experiments.AblationSidedness(o)
		if err != nil {
			fail("ablation sidedness", err)
		}
		fmt.Println(side.Table())
		ex, err := experiments.AblationNoExhaust(o)
		if err != nil {
			fail("ablation exhaust", err)
		}
		fmt.Println(ex.Table())
		spray, err := experiments.AblationSpraySize(o)
		if err != nil {
			fail("ablation spray", err)
		}
		fmt.Println(spray.Table())
		thp, err := experiments.AblationTHP(o)
		if err != nil {
			fail("ablation thp", err)
		}
		fmt.Println(thp.Table())
		pcp, err := experiments.AblationPCPNoise(o)
		if err != nil {
			fail("ablation pcp", err)
		}
		fmt.Println(pcp.Table())
	}
	if !ran {
		fmt.Fprintln(os.Stderr, "hh-tables: nothing selected; try -all or -table N")
		fmt.Fprintln(os.Stderr, strings.TrimSpace(`
flags: -table N (repeatable) -figure -analysis -extras -ablations -all -short -seed S -attempts N -obs ADDR`))
		shutdown()
		os.Exit(2)
	}
	shutdown()
}
