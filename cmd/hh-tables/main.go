// Command hh-tables regenerates the paper's evaluation artifacts: every
// table, the figure, and the supplementary analyses, on the simulated
// substrate.
//
// Usage:
//
//	hh-tables -all                 # everything (Table 3 takes minutes)
//	hh-tables -table 1 -table 2    # specific tables
//	hh-tables -figure 3            # the noise-page traces
//	hh-tables -analysis -extras    # closed-form + Section 6 analyses
//	hh-tables -ablations           # design-choice ablations
//	hh-tables -short -all          # reduced-scale quick pass
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"hyperhammer"
	"hyperhammer/experiments"
	"hyperhammer/internal/obs"
)

type intList []int

func (l *intList) String() string { return fmt.Sprint(*l) }

func (l *intList) Set(v string) error {
	n, err := strconv.Atoi(v)
	if err != nil {
		return err
	}
	*l = append(*l, n)
	return nil
}

func main() {
	var tables intList
	figure := flag.Bool("figure", false, "reproduce Figure 3 (noise-page traces)")
	analysis := flag.Bool("analysis", false, "Section 5.3 closed-form analysis")
	extras := flag.Bool("extras", false, "Section 5.1/6 analyses (DRAMDig, quarantine, Xen, balloon)")
	ablations := flag.Bool("ablations", false, "design-choice ablations")
	all := flag.Bool("all", false, "everything")
	short := flag.Bool("short", false, "reduced scale (seconds instead of minutes)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	attempts := flag.Int("attempts", 0, "Table 3 attempt cap (0 = default)")
	tracePath := flag.String("trace", "", "write JSONL trace events from every booted host to this file")
	metricsPath := flag.String("metrics", "", "write aggregated metrics to this file at exit (Prometheus text; .json suffix selects a JSON snapshot)")
	obsAddr := flag.String("obs", "", "serve the live observability plane on this address (status page, /metrics, /api/series, SSE events, pprof)")
	obsSample := flag.Duration("obs-sample", time.Second, "simulated-time interval between observability samples")
	obsHold := flag.Duration("obs-hold", 0, "keep the observability server up this long (wall clock) after the run ends")
	artifactPath := flag.String("artifact", "", "write the self-describing run bundle (config, metrics, cost profile) to this file for hh-diff")
	storeDir := flag.String("store", "", "ingest the run bundle into this run-history store directory (config-hash indexed; hh-trend folds the stored history into cross-run trends)")
	chromePath := flag.String("chrome-trace", "", "write the host-cost schedule as Chrome trace_event JSON (loadable in Perfetto / chrome://tracing) to this file")
	parallel := flag.Int("parallel", 0, "worker-pool size for independent experiment units (0 = GOMAXPROCS, 1 = sequential; results are identical at any setting)")
	ledgerEpoch := flag.Duration("ledger-epoch", 0, "seal determinism-ledger fingerprint epochs at this simulated interval (0 disables the ledger entirely; hh-bisect localizes divergence between two ledgered artifacts)")
	flag.Var(&tables, "table", "table number to reproduce (repeatable: 1, 2, 3)")
	flag.Parse()

	// -artifact and -store both archive the run bundle, so everything
	// the bundle needs rides along whenever either is set.
	archive := *artifactPath != "" || *storeDir != ""
	var store *hyperhammer.RunStore
	if *storeDir != "" {
		var err error
		if store, err = hyperhammer.OpenRunStore(*storeDir); err != nil {
			fmt.Fprintf(os.Stderr, "hh-tables: %v\n", err)
			os.Exit(1)
		}
	}
	want := func(n int) bool {
		if *all {
			return true
		}
		for _, t := range tables {
			if t == n {
				return true
			}
		}
		return false
	}
	// The normalized experiment selection, in canonical order. This is
	// what the artifact records as deterministic config: unlike the raw
	// argv it is independent of flag order, repetition, and host-only
	// flags, so two runs selecting the same experiments hash the same.
	var selParts []string
	for n := 1; n <= 3; n++ {
		if want(n) {
			selParts = append(selParts, fmt.Sprintf("table%d", n))
		}
	}
	if *figure || *all {
		selParts = append(selParts, "figure3")
	}
	if *analysis || *all {
		selParts = append(selParts, "analysis")
	}
	if *extras || *all {
		selParts = append(selParts, "extras")
	}
	if *ablations || *all {
		selParts = append(selParts, "ablations")
	}
	selected := strings.Join(selParts, ",")

	o := experiments.Options{Seed: *seed, Short: *short, MaxAttempts: *attempts, Parallel: *parallel}
	var traceFile *os.File
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hh-tables: %v\n", err)
			os.Exit(1)
		}
		traceFile = f
		// Buffered; closeTrace flushes on every exit path (os.Exit
		// skips defers, and fail() exits through os.Exit).
		o.Trace = hyperhammer.NewTrace(bufio.NewWriterSize(f, 1<<20), 0)
	} else if archive {
		// Cost profiling folds span events, so the artifact needs a
		// recorder even without a trace file.
		o.Trace = hyperhammer.NewTrace(nil, 0)
	}
	closeTrace := func() {
		if o.Trace == nil {
			return
		}
		if err := o.Trace.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "hh-tables: flushing trace:", err)
		}
		if n := o.Trace.EncodeErrors(); n > 0 {
			fmt.Fprintf(os.Stderr, "hh-tables: %d trace events lost to encode/flush errors\n", n)
		}
		if traceFile != nil {
			traceFile.Close()
		}
	}
	if *metricsPath != "" || *obsAddr != "" || archive {
		o.Metrics = hyperhammer.NewMetrics()
	}
	// The introspection plane rides along whenever the run is observed
	// live or archived; every unit gets a scoped inspector absorbed in
	// declaration order (see experiments/plan.go).
	if *obsAddr != "" || archive {
		o.Inspect = hyperhammer.NewInspector(hyperhammer.InspectConfig{})
	}
	// Same for the forensics plane: every unit records flip provenance
	// into a scoped recorder, absorbed in declaration order.
	if *obsAddr != "" || archive {
		o.Forensics = hyperhammer.NewForensics(hyperhammer.ForensicsConfig{})
	}
	// The determinism ledger is strictly opt-in (unlike the planes
	// above): leaving it off keeps archived baselines byte-identical
	// with pre-ledger builds. Every unit folds into a scoped recorder,
	// absorbed in declaration order, so the ledger is byte-identical at
	// any -parallel.
	if *ledgerEpoch > 0 {
		o.Ledger = hyperhammer.NewLedger(hyperhammer.LedgerConfig{Epoch: *ledgerEpoch})
	}
	var profiler *hyperhammer.CostProfiler
	if archive {
		// The profiler is NOT attached as a sink on the shared
		// recorder: every unit folds spans over its own scoped
		// recorder and the plan absorbs the per-unit profiles at
		// delivery. A shared sink would count the absorbed replays a
		// second time.
		profiler = hyperhammer.NewCostProfiler(o.Metrics)
	}
	// Progress lines carry the simulated clock of the most recently
	// booted host — each experiment restarts it.
	log := obs.NewLogger(os.Stderr, o.Metrics.SimTime, nil)
	flushMetrics := func() {
		if o.Metrics == nil || *metricsPath == "" {
			return
		}
		f, err := os.Create(*metricsPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hh-tables: %v\n", err)
			return
		}
		defer f.Close()
		if strings.HasSuffix(*metricsPath, ".json") {
			err = o.Metrics.WriteJSON(f)
		} else {
			err = o.Metrics.WriteProm(f)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "hh-tables: %v\n", err)
		}
	}
	var srv *obs.Server
	if *obsAddr != "" {
		plane := hyperhammer.NewObs(o.Metrics, hyperhammer.ObsConfig{SampleEvery: *obsSample})
		plane.AttachProfile(profiler)
		plane.SetInspector(o.Inspect)
		plane.SetForensics(o.Forensics)
		plane.SetLedger(o.Ledger)
		o.Obs = plane
		// Units run hosts with Obs unset, so nothing ever taps the
		// shared recorder implicitly; tap it here so absorbed unit
		// events stream onto the live bus — then detach the profile
		// sink TapTrace installs, for the same double-count reason as
		// above.
		plane.TapTrace(o.Trace)
		o.Trace.SetNamedSink("profile", nil)
		var err error
		if srv, err = plane.Serve(*obsAddr); err != nil {
			fmt.Fprintf(os.Stderr, "hh-tables: %v\n", err)
			os.Exit(1)
		}
		log.Info("observability plane serving", "url", "http://"+srv.Addr()+"/")
	}
	// The shared plan is created here — after the whole telemetry plane
	// is wired into o — so the artifact builder, the /api/plan endpoint,
	// and the Chrome-trace exporter below can all source the host-cost
	// schedule from it. Experiments register their units further down.
	p := experiments.NewPlan(o)
	p.SetProfiler(profiler)
	o.Obs.SetPlanFunc(p.PlanReport)
	scale := "full"
	if *short {
		scale = "short"
	}
	buildArtifact := func() *hyperhammer.RunArtifact {
		a := hyperhammer.NewRunArtifact("hh-tables", *seed, scale)
		a.CreatedAt = time.Now().UTC().Format(time.RFC3339)
		a.Config["short"] = strconv.FormatBool(*short)
		a.Config["attempts"] = strconv.Itoa(*attempts)
		a.Config["parallel"] = strconv.Itoa(*parallel)
		// "selected" is the canonical experiment set (enters ConfigHash);
		// "selection" keeps the raw argv for humans and is excluded from
		// the hash as host-only (it drags output paths and -parallel in).
		a.Config["selected"] = selected
		a.Config["selection"] = strings.Join(os.Args[1:], " ")
		a.SimSeconds = o.Metrics.SimTime().Seconds()
		// StripHost keeps the artifact's metrics section byte-identical
		// at any -parallel: sched_* families are host observations and
		// live in the plan section instead.
		a.Metrics = o.Metrics.Snapshot().StripHost()
		a.SetProfile(profiler.Snapshot())
		a.SetInspector(o.Inspect)
		a.SetForensics(o.Forensics)
		a.SetLedger(o.Ledger)
		if o.Ledger != nil {
			a.Config["ledger-epoch"] = ledgerEpoch.String()
		}
		if p.Schedule() != nil {
			a.SetPlan(p.PlanReport())
		}
		return a
	}
	if archive {
		o.Obs.SetArtifactFunc(func() any { return buildArtifact() })
	}
	o.Obs.SetRunStore(store)
	writeArtifact := func() {
		if !archive {
			return
		}
		a := buildArtifact()
		if *artifactPath != "" {
			if err := a.WriteFile(*artifactPath); err != nil {
				fmt.Fprintln(os.Stderr, "hh-tables:", err)
			} else {
				log.Info("run artifact written", "path", *artifactPath)
			}
		}
		if store != nil {
			e, err := store.Ingest(a)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hh-tables:", err)
			} else {
				log.Info("run ingested into history store",
					"store", *storeDir, "run", e.RunID, "config", e.ConfigHash)
			}
			store.Close()
		}
	}
	writeChrome := func() {
		if *chromePath == "" {
			return
		}
		f, err := os.Create(*chromePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hh-tables:", err)
			return
		}
		if err := hyperhammer.WriteChromeTrace(f, p.Schedule()); err != nil {
			fmt.Fprintln(os.Stderr, "hh-tables:", err)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "hh-tables:", err)
			return
		}
		log.Info("chrome trace written", "path", *chromePath)
	}
	shutdown := func() {
		flushMetrics()
		writeArtifact()
		writeChrome()
		closeTrace()
		if srv != nil {
			if *obsHold > 0 {
				log.Info("holding observability server before exit", "hold", obsHold.String())
				time.Sleep(*obsHold)
			}
			srv.Close()
		}
	}
	// Every selected experiment registers its units on the shared plan
	// created above; the plan fans independent units across the worker
	// pool and folds results — values and telemetry alike — in
	// declaration order, so stdout, metrics, traces and the artifact
	// are identical at any -parallel setting. Printing happens after
	// Run, from the resolved futures, in the same order as the
	// sequential CLI.
	var prints []func()
	sel := func(what string, reg func()) {
		log.Info("queueing", "artifact", what)
		reg()
	}

	var t1f *experiments.Future[*experiments.Table1Result]
	if want(1) {
		sel("table 1", func() {
			f := p.Table1()
			t1f = f
			prints = append(prints, func() { fmt.Println(f.Get().Table()) })
		})
	}
	if want(2) {
		sel("table 2", func() {
			f := p.Table2()
			prints = append(prints, func() { fmt.Println(f.Get().Table()) })
		})
	}
	if want(3) {
		sel("table 3", func() {
			f := p.Table3()
			prints = append(prints, func() { fmt.Println(f.Get().Table()) })
		})
	}
	if *figure || *all {
		sel("figure 3", func() {
			f := p.Figure3()
			prints = append(prints, func() {
				fmt.Println(f.Get().Figure())
				fmt.Println("summary:")
				fmt.Println(f.Get().Figure().Summary())
			})
		})
	}
	if *analysis || *all {
		sel("analysis", func() {
			in := t1f
			if in == nil {
				in = experiments.Resolved[*experiments.Table1Result](nil)
			}
			f := p.Analysis(in)
			prints = append(prints, func() {
				fmt.Println(f.Get().Table())
				fmt.Println(experiments.VMSize(o).Table())
			})
		})
	}
	if *extras || *all {
		sel("extras", func() {
			dd := p.DRAMDig()
			mit := p.Mitigation()
			xen := p.Xen()
			bal := p.Balloon()
			trr := p.TRR()
			ecc := p.ECC()
			mh := p.Multihit()
			prints = append(prints, func() {
				fmt.Println(dd.Get().Table())
				fmt.Println(mit.Get().Table())
				fmt.Println(xen.Get().Table())
				fmt.Println(bal.Get().Table())
				fmt.Println(trr.Get().Table())
				fmt.Println(ecc.Get().Table())
				fmt.Println(mh.Get().Table())
			})
		})
	}
	if *ablations || *all {
		sel("ablations", func() {
			side := p.AblationSidedness()
			ex := p.AblationNoExhaust()
			spray := p.AblationSpraySize()
			thp := p.AblationTHP()
			pcp := p.AblationPCPNoise()
			prints = append(prints, func() {
				fmt.Println(side.Get().Table())
				fmt.Println(ex.Get().Table())
				fmt.Println(spray.Get().Table())
				fmt.Println(thp.Get().Table())
				fmt.Println(pcp.Get().Table())
			})
		})
	}
	if p.Units() == 0 {
		fmt.Fprintln(os.Stderr, "hh-tables: nothing selected; try -all or -table N")
		fmt.Fprintln(os.Stderr, strings.TrimSpace(`
flags: -table N (repeatable) -figure -analysis -extras -ablations -all -short -seed S -attempts N -parallel N -obs ADDR`))
		shutdown()
		os.Exit(2)
	}
	log.Info("running", "units", strconv.Itoa(p.Units()))
	if err := p.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "hh-tables: %v\n", err)
		shutdown()
		os.Exit(1)
	}
	for _, print := range prints {
		print()
	}
	shutdown()
}
