// Command hyperhammer runs the end-to-end attack: boot a simulated
// KVM host, plant a secret in host-kernel memory that no guest can
// reach, then let a malicious tenant VM profile its memory, steer EPT
// pages onto Rowhammer-vulnerable frames, flip them, and read the
// secret through the stolen translation.
//
// Usage:
//
//	hyperhammer                    # full-scale campaign (minutes)
//	hyperhammer -short             # 4 GiB scale (seconds)
//	hyperhammer -attempts N        # attempt budget
//	hyperhammer -obs 127.0.0.1:0   # live status page + /metrics + SSE
//	hyperhammer -artifact run.json # write the run bundle for hh-diff
//	hyperhammer -store store       # ingest the run into the history store (hh-trend)
//	hyperhammer -chrome-trace t.json # host-cost schedule for Perfetto
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"hyperhammer"
	"hyperhammer/internal/obs"
	"hyperhammer/internal/report"
	"hyperhammer/internal/runartifact"
	"hyperhammer/internal/sched"
)

func main() {
	short := flag.Bool("short", false, "run the reduced 4 GiB scale")
	seed := flag.Uint64("seed", 0, "simulation seed (0 = scale default)")
	attempts := flag.Int("attempts", 0, "attempt budget (0 = scale default)")
	tracePath := flag.String("trace", "", "write host-side JSONL trace events to this file")
	metricsPath := flag.String("metrics", "", "write end-of-run metrics to this file (Prometheus text; .json suffix selects a JSON snapshot)")
	metricsTable := flag.Bool("metrics-table", false, "print the metrics as a human-readable table at exit")
	obsAddr := flag.String("obs", "", "serve the live observability plane on this address (status page, /metrics, /api/series, SSE events, pprof)")
	obsSample := flag.Duration("obs-sample", time.Second, "simulated-time interval between observability samples")
	obsHold := flag.Duration("obs-hold", 0, "keep the observability server up this long (wall clock) after the campaign ends")
	artifactPath := flag.String("artifact", "", "write the self-describing run bundle (config, metrics, cost profile, outcome) to this file for hh-diff")
	storeDir := flag.String("store", "", "ingest the run bundle into this run-history store directory (config-hash indexed; hh-trend folds the stored history into cross-run trends)")
	hammerRounds := flag.Int("hammer-rounds", 0, "activation budget per hammer pattern (0 = attack default)")
	parallel := flag.Int("parallel", 1, "accepted for CLI symmetry with hh-tables and recorded in the artifact; the single campaign is one serial unit, so it does not change execution")
	chromeTrace := flag.String("chrome-trace", "", "write the host-cost schedule as Chrome trace_event JSON to this file (load in Perfetto or chrome://tracing)")
	ledgerEpoch := flag.Duration("ledger-epoch", 0, "seal determinism-ledger fingerprint epochs at this simulated interval (0 disables the ledger entirely; hh-bisect localizes divergence between two ledgered artifacts)")
	flag.Parse()

	// -artifact and -store both archive the run bundle (to a file, to
	// the history store, or both), so everything the bundle needs rides
	// along whenever either is set.
	archive := *artifactPath != "" || *storeDir != ""
	var store *hyperhammer.RunStore
	if *storeDir != "" {
		var err error
		if store, err = hyperhammer.OpenRunStore(*storeDir); err != nil {
			fatal(err)
		}
	}

	if *seed == 0 {
		// Known-good defaults per scale; the attack is a geometric
		// draw at the Section 5.3.1 bound, so arbitrary seeds may
		// need more attempts than the default budget.
		*seed = 1
		if *short {
			*seed = 4
		}
	}

	hostCfg := hyperhammer.S1(*seed)
	vmCfg := hyperhammer.VMConfig{MemSize: 13 * hyperhammer.GiB, VFIOGroups: 1, BootSplits: 500}
	attackCfg := hyperhammer.DefaultAttackConfig(hyperhammer.S1BankFunction())
	budget := 600
	if *short {
		hostCfg.Geometry = shortGeometry()
		hostCfg.Fault = hyperhammer.FaultModel{
			Seed: *seed, CellsPerRow: 0.02,
			ThresholdMin: 120_000, ThresholdMax: 400_000,
			StableFraction: 0.54, FlakyP: 0.35,
			NeighborWeight1: 1.0, NeighborWeight2: 0.25,
		}
		hostCfg.BootNoisePages = 2000
		vmCfg.MemSize = 3584 * hyperhammer.MiB
		vmCfg.BootSplits = 150
		attackCfg.HostMemBits = 32
		attackCfg.IOVAMappings = 6000
		attackCfg.TargetBits = 3
		budget = 250
	}
	if *attempts > 0 {
		budget = *attempts
	}
	if *hammerRounds > 0 {
		attackCfg.HammerRounds = *hammerRounds
	}

	var rec *hyperhammer.TraceRecorder
	var traceFile *os.File
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		traceFile = f
		// Buffered: a campaign emits hundreds of thousands of events.
		// closeTrace flushes on every exit path — os.Exit skips defers,
		// and the buffered tail is the part that explains a crash.
		rec = hyperhammer.NewTrace(bufio.NewWriterSize(f, 1<<20), 0)
		hostCfg.Trace = rec
	} else if archive {
		// The artifact's cost profile folds span events, so profiling
		// needs a recorder even when no trace file was requested;
		// in-memory with no ring is nearly free.
		rec = hyperhammer.NewTrace(nil, 0)
		hostCfg.Trace = rec
	}
	closeTrace := func() {
		if rec == nil {
			return
		}
		if err := rec.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "hyperhammer: flushing trace:", err)
		}
		if n := rec.EncodeErrors(); n > 0 {
			fmt.Fprintf(os.Stderr, "hyperhammer: %d trace events lost to encode/flush errors\n", n)
		}
		if traceFile != nil {
			traceFile.Close()
		}
	}

	var reg *hyperhammer.MetricsRegistry
	if *metricsPath != "" || *metricsTable || *obsAddr != "" || archive {
		reg = hyperhammer.NewMetrics()
		hostCfg.Metrics = reg
	}

	// The introspection plane rides along whenever the run is observed
	// live or archived: heatmap/census/alert endpoints and artifact
	// sections come from the same inspector.
	var inspector *hyperhammer.Inspector
	if *obsAddr != "" || archive {
		inspector = hyperhammer.NewInspector(hyperhammer.InspectConfig{})
		hostCfg.Inspect = inspector
	}

	// The forensics plane likewise rides along on observed or archived
	// runs: /api/forensics and the artifact's forensics section (what
	// hh-why explains) come from the same recorder.
	var forensicsRec *hyperhammer.ForensicsRecorder
	if *obsAddr != "" || archive {
		forensicsRec = hyperhammer.NewForensics(hyperhammer.ForensicsConfig{})
		hostCfg.Forensics = forensicsRec
	}

	// The determinism ledger is strictly opt-in: unlike the planes
	// above it exists to detect drift between deliberate runs, and
	// leaving it off keeps archived baselines byte-identical with
	// pre-ledger builds.
	var ledgerRec *hyperhammer.LedgerRecorder
	if *ledgerEpoch > 0 {
		ledgerRec = hyperhammer.NewLedger(hyperhammer.LedgerConfig{Epoch: *ledgerEpoch})
		hostCfg.Ledger = ledgerRec
	}

	var profiler *hyperhammer.CostProfiler
	if archive {
		profiler = hyperhammer.NewCostProfiler(reg)
		rec.SetNamedSink("profile", profiler.Consume)
	}
	// Every progress line is stamped with the simulated clock, the
	// time base of every duration the campaign reports.
	log := obs.NewLogger(os.Stdout, reg.SimTime, nil)

	var srv *obs.Server
	var plane *hyperhammer.ObsPlane
	if *obsAddr != "" {
		plane = hyperhammer.NewObs(reg, hyperhammer.ObsConfig{SampleEvery: *obsSample})
		plane.AttachProfile(profiler) // nil profiler → /api/profile serves empty
		plane.SetInspector(inspector)
		plane.SetForensics(forensicsRec)
		plane.SetLedger(ledgerRec)
		hostCfg.Obs = plane
		var err error
		if srv, err = plane.Serve(*obsAddr); err != nil {
			fatal(err)
		}
		log.Info("observability plane serving", "url", "http://"+srv.Addr()+"/")
	}
	closeObs := func() {
		if srv == nil {
			return
		}
		if *obsHold > 0 {
			log.Info("holding observability server before exit", "hold", obsHold.String())
			time.Sleep(*obsHold)
		}
		srv.Close()
	}
	// Called explicitly before every exit path: os.Exit skips defers.
	exportMetrics := func() {
		if reg == nil {
			return
		}
		if *metricsTable {
			fmt.Println()
			fmt.Print(report.MetricsTable(reg.Snapshot()))
		}
		if *metricsPath == "" {
			return
		}
		f, err := os.Create(*metricsPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if strings.HasSuffix(*metricsPath, ".json") {
			err = reg.WriteJSON(f)
		} else {
			err = reg.WriteProm(f)
		}
		if err != nil {
			fatal(err)
		}
	}
	// The artifact bundles everything hh-diff compares. campaignRes is
	// filled in after the campaign; building before that (the live
	// /api/artifact endpoint, or a crash path) yields a bundle without
	// outcome rows, which hh-diff treats as figures missing on one side.
	var campaignRes *hyperhammer.CampaignResult
	// The host-cost schedule of the single campaign unit, stamped by
	// the timed scheduler. Stored atomically because the live /api/plan
	// and /api/artifact handlers read it from server goroutines while
	// the campaign is still running (Load() == nil until it finishes).
	var hostSched atomic.Pointer[hyperhammer.HostSchedule]
	scale := "full"
	if *short {
		scale = "short"
	}
	buildArtifact := func() *hyperhammer.RunArtifact {
		a := hyperhammer.NewRunArtifact("hyperhammer", *seed, scale)
		a.CreatedAt = time.Now().UTC().Format(time.RFC3339)
		a.Config["short"] = strconv.FormatBool(*short)
		a.Config["attempts"] = strconv.Itoa(budget)
		a.Config["hammer-rounds"] = strconv.Itoa(attackCfg.HammerRounds)
		a.Config["parallel"] = strconv.Itoa(*parallel)
		a.Config["geometry"] = hostCfg.Geometry.Name
		a.SimSeconds = reg.SimTime().Seconds()
		// Host telemetry (sched_*) is wall-clock and would break the
		// byte-identical artifact guarantee; the plan section is the
		// one place host cost is allowed to live.
		a.Metrics = reg.Snapshot().StripHost()
		a.SetProfile(profiler.Snapshot())
		a.SetInspector(inspector)
		a.SetForensics(forensicsRec)
		a.SetLedger(ledgerRec)
		if ledgerRec != nil {
			a.Config["ledger-epoch"] = ledgerEpoch.String()
		}
		if sc := hostSched.Load(); sc != nil {
			a.SetPlan(hyperhammer.BuildPlanReport(sc))
		}
		if res := campaignRes; res != nil {
			a.Outcome["attempts"] = float64(len(res.Attempts))
			a.Outcome["successes"] = float64(res.Successes)
			a.Outcome["first_success_attempt"] = float64(res.FirstSuccessAttempt)
			a.Outcome["profiled_bits"] = float64(res.ProfiledBits)
			a.Outcome["profile_seconds"] = res.ProfileDuration.Seconds()
			a.Outcome["steer_seconds"] = res.SteerTime.Seconds()
			a.Outcome["exploit_seconds"] = res.ExploitTime.Seconds()
			a.Outcome["reboot_seconds"] = res.RebootTime.Seconds()
			a.Outcome["setup_seconds"] = res.SetupTime.Seconds()
			a.Outcome["total_seconds"] = res.TotalDuration.Seconds()
		}
		// A compact extract of the headline series, when the plane
		// sampled any (hh-diff compares endpoints; the curves are for
		// humans and plots).
		for _, name := range []string{"dram_activations_total", "hammer_rounds_total"} {
			for _, sd := range plane.Store().Series(name) {
				s := runartifact.Series{Name: sd.Name, Labels: sd.Labels, Kind: sd.Kind}
				for _, pt := range sd.Points {
					s.Points = append(s.Points, runartifact.SeriesPoint{T: pt.SimSeconds, V: pt.Value})
				}
				a.Series = append(a.Series, s)
			}
		}
		return a
	}
	if archive {
		plane.SetArtifactFunc(func() any { return buildArtifact() })
	}
	plane.SetRunStore(store)
	// /api/plan serves the host-cost analysis live; until the campaign
	// finishes it reports an empty schedule rather than erroring.
	plane.SetPlanFunc(func() *hyperhammer.PlanReport {
		return hyperhammer.BuildPlanReport(hostSched.Load())
	})
	writeArtifact := func() {
		if !archive {
			return
		}
		a := buildArtifact()
		if *artifactPath != "" {
			if err := a.WriteFile(*artifactPath); err != nil {
				fmt.Fprintln(os.Stderr, "hyperhammer:", err)
			} else {
				log.Info("run artifact written", "path", *artifactPath)
			}
		}
		if store != nil {
			e, err := store.Ingest(a)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hyperhammer:", err)
			} else {
				log.Info("run ingested into history store",
					"store", *storeDir, "run", e.RunID, "config", e.ConfigHash)
			}
			store.Close()
		}
	}
	writeChrome := func() {
		if *chromeTrace == "" {
			return
		}
		f, err := os.Create(*chromeTrace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hyperhammer:", err)
			return
		}
		err = hyperhammer.WriteChromeTrace(f, hostSched.Load())
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "hyperhammer:", err)
			return
		}
		log.Info("chrome trace written", "path", *chromeTrace)
	}
	shutdown := func() {
		// The campaign (or the error path) is done and the simulating
		// goroutine is idle, so a final census/watchpoint pass reflects
		// the end state rather than the last sample tick.
		inspector.Finalize(reg.SimTime())
		exportMetrics()
		writeArtifact()
		writeChrome()
		closeTrace()
		closeObs()
	}

	host, err := hyperhammer.NewHost(hostCfg)
	if err != nil {
		fatal(err)
	}
	const secretValue = 0xC0FFEE_5EC2E7
	secretHPA := host.PlantSecret(secretValue)
	log.Info("host booted",
		"geometry", hostCfg.Geometry.Name,
		"memMiB", hostCfg.Geometry.Size/hyperhammer.MiB,
		"thp", true, "nxHugepages", true, "qemu", "stock")
	log.Info("secret planted in host kernel memory",
		"hpa", fmt.Sprintf("%#x", uint64(secretHPA)))
	log.Info("attacker VM configured",
		"memMiB", vmCfg.MemSize/hyperhammer.MiB, "vfioGroups", 1, "viommu", true)

	// The single campaign runs as a one-unit batch through the same
	// timed scheduler hh-tables uses: with one unit the pool clamps to
	// one worker and takes the sequential fast path, so execution is
	// identical to a direct call — but the run lands in the host-cost
	// plane (/api/plan, the artifact's plan section, -chrome-trace).
	sc, err := sched.New(*parallel).RunTimed([]sched.Unit{{
		Name: "campaign",
		Run: func() (any, error) {
			return hyperhammer.RunCampaign(host, hyperhammer.CampaignConfig{
				Attack:             attackCfg,
				VM:                 vmCfg,
				MaxAttempts:        budget,
				StopAtFirstSuccess: true,
				VerifyHPA:          secretHPA,
				VerifyValue:        secretValue,
				ChurnOps:           400,
			})
		},
	}}, func(_ int, v any) error {
		campaignRes = v.(*hyperhammer.CampaignResult)
		return nil
	})
	hostSched.Store(sc)
	if err != nil {
		shutdown()
		fatal(err)
	}
	res := campaignRes
	log.Info("profiling finished",
		"exploitableBits", res.ProfiledBits,
		"simulated", res.ProfileDuration.String())
	log.Info("attempts finished",
		"run", len(res.Attempts),
		"avgSimulated", res.AvgAttemptTime().String())
	log.Info("phase breakdown",
		"profile", report.FormatDuration(res.ProfileDuration),
		"steer", report.FormatDuration(res.SteerTime),
		"exploit", report.FormatDuration(res.ExploitTime),
		"reboot", report.FormatDuration(res.RebootTime),
		"setup", report.FormatDuration(res.SetupTime))
	if res.Successes == 0 {
		fmt.Printf("\nno escape within %d attempts (expected ~%.0f at the Section 5.3.1 bound); retry with more -attempts or another -seed\n",
			budget, hyperhammer.ExpectedAttempts(uint64(vmCfg.MemSize), hostCfg.Geometry.Size))
		shutdown()
		os.Exit(1)
	}
	fmt.Printf("\nESCAPE at attempt %d after %v simulated attack time\n",
		res.FirstSuccessAttempt, res.TimeToFirstSuccess)
	fmt.Printf("the guest read the host-kernel secret %#x through a stolen EPT page:\n", uint64(secretValue))
	fmt.Println("KVM-enforced isolation broken.")
	shutdown()
}

func shortGeometry() *hyperhammer.Geometry {
	g, err := hyperhammer.NewGeometry(hyperhammer.Geometry{
		Name:      "short-4G (i3-10100 bank function)",
		Size:      4 * hyperhammer.GiB,
		BankMasks: hyperhammer.S1BankFunction(),
		RowShift:  18,
		RowBits:   14,
	})
	if err != nil {
		fatal(err)
	}
	return g
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hyperhammer:", err)
	os.Exit(1)
}
