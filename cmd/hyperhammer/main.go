// Command hyperhammer runs the end-to-end attack: boot a simulated
// KVM host, plant a secret in host-kernel memory that no guest can
// reach, then let a malicious tenant VM profile its memory, steer EPT
// pages onto Rowhammer-vulnerable frames, flip them, and read the
// secret through the stolen translation.
//
// Usage:
//
//	hyperhammer              # full-scale campaign (minutes)
//	hyperhammer -short       # 4 GiB scale (seconds)
//	hyperhammer -attempts N  # attempt budget
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hyperhammer"
	"hyperhammer/internal/report"
)

func main() {
	short := flag.Bool("short", false, "run the reduced 4 GiB scale")
	seed := flag.Uint64("seed", 0, "simulation seed (0 = scale default)")
	attempts := flag.Int("attempts", 0, "attempt budget (0 = scale default)")
	tracePath := flag.String("trace", "", "write host-side JSONL trace events to this file")
	metricsPath := flag.String("metrics", "", "write end-of-run metrics to this file (Prometheus text; .json suffix selects a JSON snapshot)")
	metricsTable := flag.Bool("metrics-table", false, "print the metrics as a human-readable table at exit")
	flag.Parse()

	if *seed == 0 {
		// Known-good defaults per scale; the attack is a geometric
		// draw at the Section 5.3.1 bound, so arbitrary seeds may
		// need more attempts than the default budget.
		*seed = 1
		if *short {
			*seed = 4
		}
	}

	hostCfg := hyperhammer.S1(*seed)
	vmCfg := hyperhammer.VMConfig{MemSize: 13 * hyperhammer.GiB, VFIOGroups: 1, BootSplits: 500}
	attackCfg := hyperhammer.DefaultAttackConfig(hyperhammer.S1BankFunction())
	budget := 600
	if *short {
		hostCfg.Geometry = shortGeometry()
		hostCfg.Fault = hyperhammer.FaultModel{
			Seed: *seed, CellsPerRow: 0.02,
			ThresholdMin: 120_000, ThresholdMax: 400_000,
			StableFraction: 0.54, FlakyP: 0.35,
			NeighborWeight1: 1.0, NeighborWeight2: 0.25,
		}
		hostCfg.BootNoisePages = 2000
		vmCfg.MemSize = 3584 * hyperhammer.MiB
		vmCfg.BootSplits = 150
		attackCfg.HostMemBits = 32
		attackCfg.IOVAMappings = 6000
		attackCfg.TargetBits = 3
		budget = 250
	}
	if *attempts > 0 {
		budget = *attempts
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		hostCfg.Trace = hyperhammer.NewTrace(f, 0)
	}
	var reg *hyperhammer.MetricsRegistry
	if *metricsPath != "" || *metricsTable {
		reg = hyperhammer.NewMetrics()
		hostCfg.Metrics = reg
	}
	// Called explicitly before every exit path: os.Exit skips defers.
	exportMetrics := func() {
		if reg == nil {
			return
		}
		if *metricsTable {
			fmt.Println()
			fmt.Print(report.MetricsTable(reg.Snapshot()))
		}
		if *metricsPath == "" {
			return
		}
		f, err := os.Create(*metricsPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if strings.HasSuffix(*metricsPath, ".json") {
			err = reg.WriteJSON(f)
		} else {
			err = reg.WriteProm(f)
		}
		if err != nil {
			fatal(err)
		}
	}

	host, err := hyperhammer.NewHost(hostCfg)
	if err != nil {
		fatal(err)
	}
	const secretValue = 0xC0FFEE_5EC2E7
	secretHPA := host.PlantSecret(secretValue)
	fmt.Printf("host: %s, %d MiB, THP + NX-hugepages, stock QEMU\n",
		hostCfg.Geometry.Name, hostCfg.Geometry.Size/hyperhammer.MiB)
	fmt.Printf("secret planted in host kernel memory at HPA %#x\n", secretHPA)
	fmt.Printf("attacker VM: %d MiB, 1 VFIO device, vIOMMU enabled\n\n", vmCfg.MemSize/hyperhammer.MiB)

	res, err := hyperhammer.RunCampaign(host, hyperhammer.CampaignConfig{
		Attack:             attackCfg,
		VM:                 vmCfg,
		MaxAttempts:        budget,
		StopAtFirstSuccess: true,
		VerifyHPA:          secretHPA,
		VerifyValue:        secretValue,
		ChurnOps:           400,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("profiling: %d exploitable bits, %v simulated\n",
		res.ProfiledBits, res.ProfileDuration)
	fmt.Printf("attempts: %d run, avg %v simulated each\n",
		len(res.Attempts), res.AvgAttemptTime())
	fmt.Printf("phase breakdown: profile %s, steer %s, exploit %s, reboot %s, setup %s\n",
		report.FormatDuration(res.ProfileDuration),
		report.FormatDuration(res.SteerTime),
		report.FormatDuration(res.ExploitTime),
		report.FormatDuration(res.RebootTime),
		report.FormatDuration(res.SetupTime))
	if res.Successes == 0 {
		fmt.Printf("\nno escape within %d attempts (expected ~%.0f at the Section 5.3.1 bound); retry with more -attempts or another -seed\n",
			budget, hyperhammer.ExpectedAttempts(uint64(vmCfg.MemSize), hostCfg.Geometry.Size))
		exportMetrics()
		os.Exit(1)
	}
	fmt.Printf("\nESCAPE at attempt %d after %v simulated attack time\n",
		res.FirstSuccessAttempt, res.TimeToFirstSuccess)
	fmt.Printf("the guest read the host-kernel secret %#x through a stolen EPT page:\n", uint64(secretValue))
	fmt.Println("KVM-enforced isolation broken.")
	exportMetrics()
}

func shortGeometry() *hyperhammer.Geometry {
	g, err := hyperhammer.NewGeometry(hyperhammer.Geometry{
		Name:      "short-4G (i3-10100 bank function)",
		Size:      4 * hyperhammer.GiB,
		BankMasks: hyperhammer.S1BankFunction(),
		RowShift:  18,
		RowBits:   14,
	})
	if err != nil {
		fatal(err)
	}
	return g
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hyperhammer:", err)
	os.Exit(1)
}
