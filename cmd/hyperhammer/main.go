// Command hyperhammer runs the end-to-end attack: boot a simulated
// KVM host, plant a secret in host-kernel memory that no guest can
// reach, then let a malicious tenant VM profile its memory, steer EPT
// pages onto Rowhammer-vulnerable frames, flip them, and read the
// secret through the stolen translation.
//
// Usage:
//
//	hyperhammer                    # full-scale campaign (minutes)
//	hyperhammer -short             # 4 GiB scale (seconds)
//	hyperhammer -attempts N        # attempt budget
//	hyperhammer -obs 127.0.0.1:0   # live status page + /metrics + SSE
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hyperhammer"
	"hyperhammer/internal/obs"
	"hyperhammer/internal/report"
)

func main() {
	short := flag.Bool("short", false, "run the reduced 4 GiB scale")
	seed := flag.Uint64("seed", 0, "simulation seed (0 = scale default)")
	attempts := flag.Int("attempts", 0, "attempt budget (0 = scale default)")
	tracePath := flag.String("trace", "", "write host-side JSONL trace events to this file")
	metricsPath := flag.String("metrics", "", "write end-of-run metrics to this file (Prometheus text; .json suffix selects a JSON snapshot)")
	metricsTable := flag.Bool("metrics-table", false, "print the metrics as a human-readable table at exit")
	obsAddr := flag.String("obs", "", "serve the live observability plane on this address (status page, /metrics, /api/series, SSE events, pprof)")
	obsSample := flag.Duration("obs-sample", time.Second, "simulated-time interval between observability samples")
	obsHold := flag.Duration("obs-hold", 0, "keep the observability server up this long (wall clock) after the campaign ends")
	flag.Parse()

	if *seed == 0 {
		// Known-good defaults per scale; the attack is a geometric
		// draw at the Section 5.3.1 bound, so arbitrary seeds may
		// need more attempts than the default budget.
		*seed = 1
		if *short {
			*seed = 4
		}
	}

	hostCfg := hyperhammer.S1(*seed)
	vmCfg := hyperhammer.VMConfig{MemSize: 13 * hyperhammer.GiB, VFIOGroups: 1, BootSplits: 500}
	attackCfg := hyperhammer.DefaultAttackConfig(hyperhammer.S1BankFunction())
	budget := 600
	if *short {
		hostCfg.Geometry = shortGeometry()
		hostCfg.Fault = hyperhammer.FaultModel{
			Seed: *seed, CellsPerRow: 0.02,
			ThresholdMin: 120_000, ThresholdMax: 400_000,
			StableFraction: 0.54, FlakyP: 0.35,
			NeighborWeight1: 1.0, NeighborWeight2: 0.25,
		}
		hostCfg.BootNoisePages = 2000
		vmCfg.MemSize = 3584 * hyperhammer.MiB
		vmCfg.BootSplits = 150
		attackCfg.HostMemBits = 32
		attackCfg.IOVAMappings = 6000
		attackCfg.TargetBits = 3
		budget = 250
	}
	if *attempts > 0 {
		budget = *attempts
	}

	var rec *hyperhammer.TraceRecorder
	var traceFile *os.File
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		traceFile = f
		// Buffered: a campaign emits hundreds of thousands of events.
		// closeTrace flushes on every exit path — os.Exit skips defers,
		// and the buffered tail is the part that explains a crash.
		rec = hyperhammer.NewTrace(bufio.NewWriterSize(f, 1<<20), 0)
		hostCfg.Trace = rec
	}
	closeTrace := func() {
		if rec == nil {
			return
		}
		if err := rec.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "hyperhammer: flushing trace:", err)
		}
		if n := rec.EncodeErrors(); n > 0 {
			fmt.Fprintf(os.Stderr, "hyperhammer: %d trace events lost to encode/flush errors\n", n)
		}
		traceFile.Close()
	}

	var reg *hyperhammer.MetricsRegistry
	if *metricsPath != "" || *metricsTable || *obsAddr != "" {
		reg = hyperhammer.NewMetrics()
		hostCfg.Metrics = reg
	}
	// Every progress line is stamped with the simulated clock, the
	// time base of every duration the campaign reports.
	log := obs.NewLogger(os.Stdout, reg.SimTime, nil)

	var srv *obs.Server
	if *obsAddr != "" {
		plane := hyperhammer.NewObs(reg, hyperhammer.ObsConfig{SampleEvery: *obsSample})
		hostCfg.Obs = plane
		var err error
		if srv, err = plane.Serve(*obsAddr); err != nil {
			fatal(err)
		}
		log.Info("observability plane serving", "url", "http://"+srv.Addr()+"/")
	}
	closeObs := func() {
		if srv == nil {
			return
		}
		if *obsHold > 0 {
			log.Info("holding observability server before exit", "hold", obsHold.String())
			time.Sleep(*obsHold)
		}
		srv.Close()
	}
	// Called explicitly before every exit path: os.Exit skips defers.
	exportMetrics := func() {
		if reg == nil {
			return
		}
		if *metricsTable {
			fmt.Println()
			fmt.Print(report.MetricsTable(reg.Snapshot()))
		}
		if *metricsPath == "" {
			return
		}
		f, err := os.Create(*metricsPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if strings.HasSuffix(*metricsPath, ".json") {
			err = reg.WriteJSON(f)
		} else {
			err = reg.WriteProm(f)
		}
		if err != nil {
			fatal(err)
		}
	}
	shutdown := func() {
		exportMetrics()
		closeTrace()
		closeObs()
	}

	host, err := hyperhammer.NewHost(hostCfg)
	if err != nil {
		fatal(err)
	}
	const secretValue = 0xC0FFEE_5EC2E7
	secretHPA := host.PlantSecret(secretValue)
	log.Info("host booted",
		"geometry", hostCfg.Geometry.Name,
		"memMiB", hostCfg.Geometry.Size/hyperhammer.MiB,
		"thp", true, "nxHugepages", true, "qemu", "stock")
	log.Info("secret planted in host kernel memory",
		"hpa", fmt.Sprintf("%#x", uint64(secretHPA)))
	log.Info("attacker VM configured",
		"memMiB", vmCfg.MemSize/hyperhammer.MiB, "vfioGroups", 1, "viommu", true)

	res, err := hyperhammer.RunCampaign(host, hyperhammer.CampaignConfig{
		Attack:             attackCfg,
		VM:                 vmCfg,
		MaxAttempts:        budget,
		StopAtFirstSuccess: true,
		VerifyHPA:          secretHPA,
		VerifyValue:        secretValue,
		ChurnOps:           400,
	})
	if err != nil {
		shutdown()
		fatal(err)
	}
	log.Info("profiling finished",
		"exploitableBits", res.ProfiledBits,
		"simulated", res.ProfileDuration.String())
	log.Info("attempts finished",
		"run", len(res.Attempts),
		"avgSimulated", res.AvgAttemptTime().String())
	log.Info("phase breakdown",
		"profile", report.FormatDuration(res.ProfileDuration),
		"steer", report.FormatDuration(res.SteerTime),
		"exploit", report.FormatDuration(res.ExploitTime),
		"reboot", report.FormatDuration(res.RebootTime),
		"setup", report.FormatDuration(res.SetupTime))
	if res.Successes == 0 {
		fmt.Printf("\nno escape within %d attempts (expected ~%.0f at the Section 5.3.1 bound); retry with more -attempts or another -seed\n",
			budget, hyperhammer.ExpectedAttempts(uint64(vmCfg.MemSize), hostCfg.Geometry.Size))
		shutdown()
		os.Exit(1)
	}
	fmt.Printf("\nESCAPE at attempt %d after %v simulated attack time\n",
		res.FirstSuccessAttempt, res.TimeToFirstSuccess)
	fmt.Printf("the guest read the host-kernel secret %#x through a stolen EPT page:\n", uint64(secretValue))
	fmt.Println("KVM-enforced isolation broken.")
	shutdown()
}

func shortGeometry() *hyperhammer.Geometry {
	g, err := hyperhammer.NewGeometry(hyperhammer.Geometry{
		Name:      "short-4G (i3-10100 bank function)",
		Size:      4 * hyperhammer.GiB,
		BankMasks: hyperhammer.S1BankFunction(),
		RowShift:  18,
		RowBits:   14,
	})
	if err != nil {
		fatal(err)
	}
	return g
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hyperhammer:", err)
	os.Exit(1)
}
