// Command hh-plan is a terminal view of the host-cost schedule: an
// ASCII Gantt chart of the experiment matrix across workers,
// per-worker utilization bars, the critical path through the run, and
// the top-slack units that could absorb more work. It refreshes live
// against a running obs server's /api/plan or renders once from a
// saved run artifact's plan section.
//
// All figures here are host wall-clock — the one non-deterministic
// plane of a run — so nothing hh-plan shows participates in the
// byte-identical artifact guarantee (see DESIGN.md).
//
// Usage:
//
//	hh-plan                              # watch http://127.0.0.1:9190
//	hh-plan -url http://host:port        # watch another obs server
//	hh-plan -interval 5s                 # refresh cadence
//	hh-plan -iterations 3                # stop after N refreshes
//	hh-plan -once                        # fetch once, no repaint loop
//	hh-plan -artifact run.json           # render a saved artifact, exit
//	hh-plan -width 120                   # wider Gantt/utilization bars
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"hyperhammer/internal/profile"
	"hyperhammer/internal/runartifact"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:9190", "obs server base URL (scheme optional)")
	interval := flag.Duration("interval", 2*time.Second, "refresh interval in live mode")
	iterations := flag.Int("iterations", 0, "stop after this many refreshes (0 = until interrupted)")
	once := flag.Bool("once", false, "fetch and render a single frame without clearing the screen")
	artifact := flag.String("artifact", "", "render this saved run artifact's plan section and exit (no server needed)")
	width := flag.Int("width", 72, "chart width in characters")
	flag.Parse()

	if *artifact != "" {
		if err := renderArtifact(*artifact, *width); err != nil {
			fatal(err)
		}
		return
	}
	if *once {
		*iterations = 1
	}
	if err := watch(normalizeURL(*url), *interval, *iterations, *width, *once); err != nil {
		fatal(err)
	}
}

// renderArtifact is the offline path: the artifact's embedded plan
// section through the same renderer the live view uses (and that
// hh-inspect's plan subcommand shares).
func renderArtifact(path string, width int) error {
	a, err := runartifact.ReadFile(path)
	if err != nil {
		return err
	}
	if a.Plan == nil {
		return fmt.Errorf("%s carries no plan section (rerun the producing tool with -artifact on a build with the host-cost plane)", path)
	}
	fmt.Printf("hh-plan -artifact %s  (tool=%s seed=%d scale=%s simSeconds=%.1f)\n\n",
		path, a.Tool, a.Seed, a.Scale, a.SimSeconds)
	return profile.RenderPlan(os.Stdout, a.Plan, width)
}

// watch polls /api/plan and repaints. A run that has not finished yet
// serves a plan with zero units; that renders as an empty schedule
// rather than an error so the watch can be started before the run.
func watch(base string, interval time.Duration, iterations, width int, plain bool) error {
	client := &http.Client{Timeout: 10 * time.Second}
	for i := 0; ; i++ {
		var plan profile.PlanReport
		if err := getJSON(client, base+"/api/plan", &plan); err != nil {
			return err
		}
		if !plain {
			// Classic top repaint: clear, home, redraw.
			fmt.Print("\x1b[2J\x1b[H")
		}
		fmt.Printf("hh-plan  %s  (refresh %s)\n\n", base, interval)
		if err := profile.RenderPlan(os.Stdout, &plan, width); err != nil {
			return err
		}
		if iterations > 0 && i+1 >= iterations {
			return nil
		}
		time.Sleep(interval)
	}
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return fmt.Errorf("GET %s: decoding: %w", url, err)
	}
	return nil
}

func normalizeURL(u string) string {
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	return strings.TrimRight(u, "/")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hh-plan:", err)
	os.Exit(1)
}
