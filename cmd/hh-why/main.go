// Command hh-why answers "why did attempt N fail (or escape)?" from a
// run artifact's flip-provenance section. Without flags it prints the
// campaign-level view: every attempt's outcome with its synthesized
// one-line cause, the per-campaign failure taxonomy, and the global
// flip-verdict and frame-owner tables. With -attempt it drills into one
// attempt's full causal lineage: the attack-ladder facts, then every
// retained flip with the aggressor rows that drove it, the mitigation
// (if any) that intercepted it, and — for landed flips — the physical
// frame owner it corrupted, down to the EPT table page whose corrupted
// EPTE redirects a VM's translation.
//
// Usage:
//
//	hyperhammer -short -artifact run.json
//	hh-why run.json                      # every attempt: outcome + cause
//	hh-why -attempt 33 run.json          # full lineage of attempt 33
//	hh-why -unit "S1 campaign" -attempt 2 run.json
//	hh-why -json run.json                # raw forensics snapshot
//
// Exit status: 0 on success, 1 on a missing/invalid artifact or an
// unknown attempt, 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"hyperhammer/internal/forensics"
	"hyperhammer/internal/runartifact"
)

func main() {
	attempt := flag.Int("attempt", 0, "drill into this attempt's full flip lineage (1-based)")
	unit := flag.String("unit", "", "scope -attempt to this plan unit's campaign (empty: first match)")
	asJSON := flag.Bool("json", false, "emit the raw forensics snapshot as JSON")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: hh-why [-attempt N [-unit NAME]] [-json] artifact.json")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	a, err := runartifact.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	s := a.Forensics
	if s == nil {
		fatal(fmt.Errorf("%s carries no forensics section (produce it with a current build and -artifact)", flag.Arg(0)))
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s); err != nil {
			fatal(err)
		}
		return
	}

	if *attempt > 0 {
		c, att, ok := s.FindAttempt(*unit, *attempt)
		if !ok {
			if *unit != "" {
				fatal(fmt.Errorf("no attempt %d in unit %q", *attempt, *unit))
			}
			fatal(fmt.Errorf("no attempt %d in any recorded campaign", *attempt))
		}
		if c.Unit != "" {
			fmt.Printf("unit %s, ", c.Unit)
		}
		forensics.WriteAttempt(os.Stdout, c, att)
		return
	}

	fmt.Printf("%s: tool=%s seed=%d scale=%s simSeconds=%.1f\n\n",
		flag.Arg(0), a.Tool, a.Seed, a.Scale, a.SimSeconds)
	s.WriteSummary(os.Stdout)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hh-why:", err)
	os.Exit(1)
}
