// Command hh-profile runs the memory-profiling step (Section 4.1, the
// Table 1 workload) on one simulated system and prints the findings.
//
// Usage:
//
//	hh-profile              # S1, full 16 GiB scale
//	hh-profile -system S2
//	hh-profile -stop 12     # stop at 12 attack-usable bits (Section 5.3.3)
package main

import (
	"flag"
	"fmt"
	"os"

	"hyperhammer"
)

func main() {
	system := flag.String("system", "S1", "S1 or S2")
	seed := flag.Uint64("seed", 1, "simulation seed")
	stop := flag.Int("stop", 0, "stop after this many attack-usable bits (0 = full profile)")
	verbose := flag.Bool("v", false, "print each vulnerable bit")
	flag.Parse()

	var hostCfg hyperhammer.HostConfig
	var masks []uint64
	switch *system {
	case "S1":
		hostCfg = hyperhammer.S1(*seed)
		masks = hyperhammer.S1BankFunction()
	case "S2":
		hostCfg = hyperhammer.S2(*seed)
		masks = hyperhammer.S2BankFunction()
	default:
		fmt.Fprintln(os.Stderr, "hh-profile: -system must be S1 or S2")
		os.Exit(2)
	}

	host, err := hyperhammer.NewHost(hostCfg)
	if err != nil {
		fatal(err)
	}
	vm, err := host.CreateVM(hyperhammer.VMConfig{
		MemSize: 13 * hyperhammer.GiB, VFIOGroups: 1, BootSplits: 500,
	})
	if err != nil {
		fatal(err)
	}
	gos := hyperhammer.BootGuest(vm)

	cfg := hyperhammer.DefaultAttackConfig(masks)
	cfg.ProfileHugepages = 12 * hyperhammer.GiB / hyperhammer.HugePageSize
	cfg.StopAfterExploitable = *stop
	prof, err := hyperhammer.Profile(gos, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("system %s: profiled %d hugepages in %v simulated (%d hammer ops)\n",
		*system, prof.Buffer.Hugepages, prof.Duration, prof.HammerOps)
	fmt.Printf("flips: total=%d 1->0=%d 0->1=%d stable=%d exploitable=%d attack-usable=%d\n",
		prof.Total, prof.OneToZero, prof.ZeroToOne, prof.Stable, prof.Exploitable, prof.AttackUsable)
	if *verbose {
		for i, b := range prof.Bits {
			fmt.Printf("  bit %3d: gva=%#x bit=%d epte-bit=%2d dir=%v stable=%v usable=%v\n",
				i, b.Flip.GVA, b.Flip.Bit, b.Flip.EPTEBit(), b.Flip.Direction, b.Stable, b.Exploitable)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hh-profile:", err)
	os.Exit(1)
}
