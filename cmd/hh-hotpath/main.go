// Command hh-hotpath is the hammer hot-path CI gate. It reads two
// `go test -bench` logs — the committed bench_output.txt and a fresh
// run of the hot-path benchmarks — and enforces two invariants:
//
//  1. The benchmarks named in -zero-alloc report 0 allocs/op in the
//     fresh log: the batched steady-state hammer path must not
//     allocate per operation.
//  2. The -compare benchmark's ns/op in the fresh log has not
//     regressed more than -bench-tol (relative) against the committed
//     log, using the same tolerance rule hh-diff and hh-trend apply
//     (runartifact.WithinTol). Improvements never fail the gate.
//
// Usage:
//
//	hh-hotpath -committed bench_output.txt -fresh hotpath_bench.txt \
//	    -zero-alloc BenchmarkHammerOp,BenchmarkHammerBatch \
//	    -compare BenchmarkTable3AttackCost -bench-tol 0.25
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hyperhammer/internal/benchfmt"
	"hyperhammer/internal/runartifact"
)

func main() {
	committedPath := flag.String("committed", "bench_output.txt", "committed benchmark log (the reference)")
	freshPath := flag.String("fresh", "", "fresh benchmark log to check (required)")
	zeroAlloc := flag.String("zero-alloc", "", "comma-separated benchmarks that must report 0 allocs/op in the fresh log")
	compare := flag.String("compare", "", "benchmark whose fresh ns/op is checked against the committed log")
	benchTol := flag.Float64("bench-tol", 0.25, "relative ns/op regression tolerance for -compare")
	flag.Parse()

	if *freshPath == "" {
		fmt.Fprintln(os.Stderr, "hh-hotpath: -fresh is required")
		os.Exit(2)
	}
	fresh := mustParse(*freshPath)

	failed := false
	for _, name := range strings.Split(*zeroAlloc, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		b, ok := fresh[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "hh-hotpath: FAIL %s: not found in fresh log\n", name)
			failed = true
			continue
		}
		if allocs := b.Metrics["allocs/op"]; allocs != 0 {
			fmt.Fprintf(os.Stderr, "hh-hotpath: FAIL %s: %g allocs/op, want 0 (run with -benchmem)\n", name, allocs)
			failed = true
		} else {
			fmt.Printf("hh-hotpath: ok   %s: 0 allocs/op (%.1f ns/op)\n", name, b.Metrics["ns/op"])
		}
	}

	if *compare != "" {
		committed := mustParse(*committedPath)
		ref, okRef := committed[*compare]
		cur, okCur := fresh[*compare]
		switch {
		case !okRef:
			fmt.Fprintf(os.Stderr, "hh-hotpath: FAIL %s: not found in committed log %s\n", *compare, *committedPath)
			failed = true
		case !okCur:
			fmt.Fprintf(os.Stderr, "hh-hotpath: FAIL %s: not found in fresh log %s\n", *compare, *freshPath)
			failed = true
		default:
			refNs, curNs := ref.Metrics["ns/op"], cur.Metrics["ns/op"]
			// One-sided: only a slowdown beyond the tolerance fails.
			if curNs > refNs && !runartifact.WithinTol(refNs, curNs, *benchTol, 0) {
				fmt.Fprintf(os.Stderr, "hh-hotpath: FAIL %s: %.0f ns/op vs committed %.0f (+%.1f%%, tol %.0f%%)\n",
					*compare, curNs, refNs, 100*(curNs/refNs-1), 100**benchTol)
				failed = true
			} else {
				fmt.Printf("hh-hotpath: ok   %s: %.0f ns/op vs committed %.0f (%+.1f%%)\n",
					*compare, curNs, refNs, 100*(curNs/refNs-1))
			}
		}
	}

	if failed {
		os.Exit(1)
	}
}

func mustParse(path string) map[string]benchfmt.Benchmark {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hh-hotpath:", err)
		os.Exit(1)
	}
	defer f.Close()
	out, err := benchfmt.Parse(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hh-hotpath:", err)
		os.Exit(1)
	}
	return out.ByName()
}
