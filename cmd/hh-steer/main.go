// Command hh-steer demonstrates Page Steering (Section 4.2, the
// Table 2 / Figure 3 workload): exhaust the host's noise pages through
// vIOMMU, voluntarily release blocks through the modified virtio-mem
// driver, spray EPT pages, and report how many released pages the
// hypervisor reused for EPTs.
//
// Usage:
//
//	hh-steer                 # 16 GiB S1, B=20 blocks, 10 GiB spray
//	hh-steer -blocks 100 -spray 5
package main

import (
	"flag"
	"fmt"
	"os"

	"hyperhammer"
)

func main() {
	seed := flag.Uint64("seed", 1, "simulation seed")
	blocks := flag.Int("blocks", 20, "page blocks to release (the paper's B)")
	sprayGiB := flag.Int("spray", 10, "EPT-creation buffer in GiB (the paper's S)")
	flag.Parse()

	host, err := hyperhammer.NewHost(hyperhammer.S1(*seed))
	if err != nil {
		fatal(err)
	}
	vm, err := host.CreateVM(hyperhammer.VMConfig{
		MemSize: 13 * hyperhammer.GiB, VFIOGroups: 1, BootSplits: 500,
	})
	if err != nil {
		fatal(err)
	}
	gos := hyperhammer.BootGuest(vm)
	gos.InstallAttackDriver()

	n := gos.FreeHugepages()
	base, err := gos.AllocHuge(n)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("noise pages before exhaustion: %d\n", host.NoisePages())

	// Step 1: exhaustion.
	iova := hyperhammer.IOVA(0x1_0000_0000)
	for m := 0; m < 60000; m++ {
		if err := gos.MapDMA(0, iova, base); err != nil {
			fatal(err)
		}
		iova += hyperhammer.HugePageSize
	}
	fmt.Printf("noise pages after 60,000 vIOMMU mappings: %d\n", host.NoisePages())

	// Step 2: voluntary releases.
	stride := (n - 1) / *blocks
	released := 0
	for i := 1; i < n && released < *blocks; i += stride {
		if err := gos.ReleaseHugepage(base + hyperhammer.GVA(i)*hyperhammer.HugePageSize); err != nil {
			fatal(err)
		}
		released++
	}
	fmt.Printf("released %d blocks (%d pages) via voluntary virtio-mem unplug\n",
		released, released*512)

	// Step 3: EPTE spray.
	want := *sprayGiB * hyperhammer.GiB / hyperhammer.HugePageSize
	sprayed := 0
	for i := 0; i < n && sprayed < want; i++ {
		gva := base + hyperhammer.GVA(i)*hyperhammer.HugePageSize
		if _, err := gos.GPAOf(gva); err != nil {
			continue // released
		}
		if _, err := gos.Exec(gva); err != nil {
			fatal(err)
		}
		sprayed++
	}
	fmt.Printf("sprayed %d hugepage executions (multihit splits: %d)\n", sprayed, vm.Splits())

	stats := vm.EPTReuse()
	fmt.Printf("\nEPT reuse: N=%d E=%d R=%d R_N=%.1f%% R_E=%.1f%%\n",
		stats.ReleasedPages, stats.EPTPages, stats.ReusedPages,
		100*stats.RN(), 100*stats.RE())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hh-steer:", err)
	os.Exit(1)
}
