package hyperhammer_test

import (
	"strings"
	"testing"

	"hyperhammer"
	"hyperhammer/internal/runartifact"
)

// campaignArtifact runs a small same-seed campaign with the full
// profiling stack wired the way `hyperhammer -artifact` wires it, and
// returns the run bundle.
func campaignArtifact(t *testing.T, seed uint64, hammerRounds int) *hyperhammer.RunArtifact {
	t.Helper()
	geo, err := hyperhammer.NewGeometry(hyperhammer.Geometry{
		Name:      "api-test-512M",
		Size:      512 * hyperhammer.MiB,
		BankMasks: hyperhammer.S1BankFunction(),
		RowShift:  18,
		RowBits:   11,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := hyperhammer.S1(seed)
	cfg.Geometry = geo
	cfg.BootNoisePages = 500

	rec := hyperhammer.NewTrace(nil, 0)
	reg := hyperhammer.NewMetrics()
	profiler := hyperhammer.NewCostProfiler(reg)
	rec.SetNamedSink("profile", profiler.Consume)
	cfg.Trace = rec
	cfg.Metrics = reg

	host, err := hyperhammer.NewHost(cfg)
	if err != nil {
		t.Fatal(err)
	}
	attackCfg := hyperhammer.DefaultAttackConfig(hyperhammer.S1BankFunction())
	attackCfg.HostMemBits = 29
	attackCfg.IOVAMappings = 1500
	attackCfg.TargetBits = 2
	if hammerRounds > 0 {
		attackCfg.HammerRounds = hammerRounds
	}
	res, err := hyperhammer.RunCampaign(host, hyperhammer.CampaignConfig{
		Attack:      attackCfg,
		VM:          hyperhammer.VMConfig{MemSize: 384 * hyperhammer.MiB, VFIOGroups: 1, BootSplits: 16},
		MaxAttempts: 2,
		ChurnOps:    100,
	})
	if err != nil {
		t.Fatal(err)
	}

	a := hyperhammer.NewRunArtifact("test", seed, "short")
	a.SimSeconds = reg.SimTime().Seconds()
	a.Outcome["attempts"] = float64(len(res.Attempts))
	a.Outcome["successes"] = float64(res.Successes)
	a.Metrics = reg.Snapshot()
	a.SetProfile(profiler.Snapshot())
	return a
}

// TestCampaignProfileDeterministic is the tentpole's determinism
// guarantee: two campaigns from the same seed produce byte-identical
// folded cost profiles, so hh-diff can compare runs at zero tolerance.
func TestCampaignProfileDeterministic(t *testing.T) {
	a := campaignArtifact(t, 9, 0)
	b := campaignArtifact(t, 9, 0)
	if a.Folded() != b.Folded() {
		t.Errorf("same-seed folded profiles differ:\n--- run A ---\n%s--- run B ---\n%s",
			a.Folded(), b.Folded())
	}
	if a.SimSeconds != b.SimSeconds {
		t.Errorf("sim seconds differ: %v vs %v", a.SimSeconds, b.SimSeconds)
	}
	d := runartifact.Compare(a, b, runartifact.Tolerances{})
	if d.Regressed() {
		t.Errorf("same-seed artifacts flagged:\n%s", d.Table(true))
	}
	if len(d.Deltas) == 0 {
		t.Fatal("no figures compared")
	}
	// The profile must actually cover the campaign's span tree.
	if !strings.Contains(a.Folded(), "attack.campaign;attack.attempt") {
		t.Errorf("folded profile missing campaign paths:\n%s", a.Folded())
	}
}

// TestCampaignProfileSeparatesBudgets: a changed hammer budget shows
// up as a flagged per-phase sim-time delta, which is how the perf gate
// catches behavior changes.
func TestCampaignProfileSeparatesBudgets(t *testing.T) {
	a := campaignArtifact(t, 9, 0)       // default 250k rounds
	b := campaignArtifact(t, 9, 400_000) // bigger budget, same seed
	d := runartifact.Compare(a, b, runartifact.Tolerances{})
	if !d.Regressed() {
		t.Fatal("different hammer budgets not flagged")
	}
	var phaseFlagged bool
	for _, row := range d.Deltas {
		if row.Kind == "phase" && row.Flagged {
			phaseFlagged = true
			break
		}
	}
	if !phaseFlagged {
		t.Errorf("no phase delta flagged:\n%s", d.Table(true))
	}
}
